"""Crash-safe write-ahead journal: append-only, checksummed JSONL.

The journal is the durability primitive under resumable dataset builds
(:func:`repro.experiments.resume_dataset`) and the service's durable
job registry (``repro serve --state-dir``).  Design constraints, in
order:

* **Crash safety.**  A record is either fully on disk or invisible.
  Appends write one newline-terminated line, flush, and ``fsync`` (the
  *write-ahead* discipline: the journal reaches disk before the effect
  it describes is relied upon).  A process killed mid-append leaves at
  most one *torn tail* — a partial final line — which replay detects
  and drops; it can never corrupt earlier records.

* **Self-verifying records.**  Each line carries its sequence number
  and a sha256 checksum over the serialized payload::

      {"fmt": "repro-journal/1", "seq": 7, "sha": "<16 hex>", "data": {...}}

  Replay stops at the first line that is torn, fails its checksum, or
  breaks the strictly-increasing sequence — everything after an
  untrustworthy point is untrustworthy too, because appends are
  ordered and fsync'd.  The survivors are exactly the records whose
  append provably completed.

* **Torn-tail tolerance, not torn-tail crashes.**  :func:`replay_journal`
  never raises on bad bytes: it returns the valid prefix plus a
  :class:`JournalTruncation` describing what was dropped.  Opening a
  journal for append first *repairs* it (truncates the torn tail), so
  a post-crash append can never splice new bytes onto half a record.

* **Atomic rotation.**  :func:`rotate_journal` rewrites a journal from
  scratch (compaction after service recovery, fresh build journals)
  through a ``tmp-journal-*`` sibling and one ``os.replace`` — readers
  and crash-recovery only ever see the old file or the new one, never
  a mix.  Stale temporaries are reaped by
  :func:`repro.perf.cache.sweep_temporaries`.

Journal files are named ``journal-<name>.jsonl`` so the cache-auditing
tools (``repro cache verify``) can find, repair and report them with
one glob.

The module calls :func:`repro.perf.faults.maybe_kill` at every seam a
crash could meaningfully land (before the write, after the write but
before the fsync, after the fsync, around rotation's replace), which is
how the chaos tests prove the guarantees above under real SIGKILL.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from ..errors import JournalError

#: Format tag embedded in every record line.
JOURNAL_FORMAT = "repro-journal/1"

#: Filename prefix of journal files (mirrors the cache-entry naming so
#: ``verify_cache`` / ``sweep_temporaries`` can glob them).
JOURNAL_PREFIX = "journal-"

#: Suffix of journal files.
JOURNAL_SUFFIX = ".jsonl"


@dataclass(frozen=True)
class JournalTruncation:
    """One torn tail dropped (or repaired) during replay.

    Attributes:
        path: the journal whose tail was torn.
        valid_records: records surviving in front of the tear.
        dropped_bytes: bytes discarded after the last valid record.
        reason: why the tail could not be trusted.
        repaired: whether the file was truncated back to the valid
            prefix (append-mode opens always repair; read-only replay
            may only report).
    """

    path: str
    valid_records: int
    dropped_bytes: int
    reason: str
    repaired: bool = False


@dataclass(frozen=True)
class JournalReplay:
    """The trustworthy contents of one journal.

    Attributes:
        records: payload dicts of every valid record, in append order.
        next_seq: the sequence number the next append must carry.
        valid_bytes: file offset of the end of the last valid record.
        truncation: the torn tail, when one was found (None on a clean
            journal or a missing file).
    """

    records: Tuple[dict, ...]
    next_seq: int
    valid_bytes: int
    truncation: Optional[JournalTruncation] = None


def _record_line(seq: int, record: dict) -> bytes:
    data = json.dumps(record, sort_keys=True, separators=(",", ":"))
    sha = hashlib.sha256(f"{seq}:{data}".encode()).hexdigest()[:16]
    envelope = json.dumps(
        {"fmt": JOURNAL_FORMAT, "seq": seq, "sha": sha, "data": record},
        sort_keys=True, separators=(",", ":"),
    )
    return envelope.encode() + b"\n"


def _parse_line(line: bytes, expected_seq: int) -> dict:
    """The record payload, or raise :class:`JournalError`."""
    try:
        envelope = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise JournalError(f"unparsable journal line: {error}")
    if not isinstance(envelope, dict):
        raise JournalError("journal line is not an object")
    if envelope.get("fmt") != JOURNAL_FORMAT:
        raise JournalError(
            f"foreign journal format: {envelope.get('fmt')!r}"
        )
    if envelope.get("seq") != expected_seq:
        raise JournalError(
            f"sequence break: record {envelope.get('seq')!r}, "
            f"expected {expected_seq}"
        )
    record = envelope.get("data")
    if not isinstance(record, dict):
        raise JournalError("journal record payload is not an object")
    data = json.dumps(record, sort_keys=True, separators=(",", ":"))
    sha = hashlib.sha256(f"{expected_seq}:{data}".encode()).hexdigest()[:16]
    if envelope.get("sha") != sha:
        raise JournalError("journal record failed its checksum")
    return record


def replay_journal(
    path: "Path | str", repair: bool = False
) -> JournalReplay:
    """Read the trustworthy prefix of a journal; never raises on bytes.

    A missing file replays as empty.  The first torn, corrupt or
    out-of-sequence line ends the replay: the records before it are
    returned and the rest is described by ``truncation``.  With
    ``repair=True`` the file is also truncated back to the valid
    prefix, so subsequent appends cannot splice onto half a record.

    Raises:
        OSError: only for OS-level read failures (not for bad bytes).
    """
    path = Path(path)
    if not path.is_file():
        return JournalReplay(records=(), next_seq=0, valid_bytes=0)
    raw = path.read_bytes()
    records: "List[dict]" = []
    offset = 0
    truncation: "Optional[JournalTruncation]" = None
    while offset < len(raw):
        end = raw.find(b"\n", offset)
        if end < 0:
            truncation = JournalTruncation(
                path=str(path),
                valid_records=len(records),
                dropped_bytes=len(raw) - offset,
                reason="torn tail: final record has no newline",
            )
            break
        line = raw[offset:end]
        try:
            records.append(_parse_line(line, len(records)))
        except JournalError as error:
            truncation = JournalTruncation(
                path=str(path),
                valid_records=len(records),
                dropped_bytes=len(raw) - offset,
                reason=str(error),
            )
            break
        offset = end + 1
    if truncation is not None and repair:
        with open(path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
        truncation = JournalTruncation(
            path=truncation.path,
            valid_records=truncation.valid_records,
            dropped_bytes=truncation.dropped_bytes,
            reason=truncation.reason,
            repaired=True,
        )
    return JournalReplay(
        records=tuple(records),
        next_seq=len(records),
        valid_bytes=offset,
        truncation=truncation,
    )


def _fsync_directory(path: Path) -> None:
    # Make the rename itself durable.  Not every platform allows
    # opening a directory; a crash window here only risks losing the
    # *rename*, never mixing old and new bytes.
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def rotate_journal(
    path: "Path | str",
    records: "Iterable[dict]",
    fsync: bool = True,
) -> Path:
    """Atomically replace a journal's contents with ``records``.

    The new journal (sequence numbers re-assigned from 0) is written to
    a ``tmp-journal-*`` sibling, fsync'd, and renamed into place, so a
    crash at any instant leaves either the old journal or the new one —
    never a blend, never a half-written replacement visible under the
    journal's name.

    Raises:
        OSError: when the directory is unwritable or the disk is full.
    """
    from . import faults

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_name(f"tmp-{path.stem}.{os.getpid()}{JOURNAL_SUFFIX}")
    try:
        with open(temporary, "wb") as handle:
            for seq, record in enumerate(records):
                handle.write(_record_line(seq, record))
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        faults.maybe_kill("journal-rotate-before-replace")
        os.replace(temporary, path)
        faults.maybe_kill("journal-rotate-after-replace")
    except Exception:
        try:
            temporary.unlink()
        except OSError:
            pass
        raise
    if fsync:
        _fsync_directory(path.parent)
    return path


class WriteAheadJournal:
    """One append-only journal file, opened lazily, repaired on open.

    Thread-safe: appends from concurrent threads serialize under one
    lock (the service's worker threads journal terminal transitions
    concurrently).  Not multi-process-safe — each journal has exactly
    one writing process (the build orchestrator, the service), which is
    what makes the sequence numbers meaningful.

    Args:
        path: the journal file (conventionally
            ``journal-<name>.jsonl``).
        fsync: fsync every append (the write-ahead guarantee).  Tests
            may disable it for speed; production callers should not.
    """

    def __init__(self, path: "Path | str", fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.RLock()
        self._handle = None
        self._next_seq = 0
        self._records: "List[dict]" = []
        self.truncation: "Optional[JournalTruncation]" = None
        self._opened = False

    # -- lifecycle -----------------------------------------------------

    def open(self) -> "WriteAheadJournal":
        """Replay + repair the file and open it for appends.

        Idempotent.  A torn tail left by a previous crash is truncated
        away (recorded on ``self.truncation``) before the append handle
        is opened, so new records always start on a record boundary.
        """
        with self._lock:
            if self._opened:
                return self
            replay = replay_journal(self.path, repair=True)
            self._records = list(replay.records)
            self._next_seq = replay.next_seq
            self.truncation = replay.truncation
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
            self._opened = True
            return self

    def close(self) -> None:
        """Close the append handle (safe to call twice)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                finally:
                    self._handle = None
            self._opened = False

    def __enter__(self) -> "WriteAheadJournal":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- appends -------------------------------------------------------

    def append(self, record: dict) -> int:
        """Durably append one record; returns its sequence number.

        The record is on disk (written, flushed, fsync'd) before this
        returns — callers may rely on it surviving SIGKILL issued any
        time afterwards.

        Raises:
            OSError: when the disk is full or the file is unwritable.
        """
        from . import faults

        with self._lock:
            if not self._opened:
                self.open()
            seq = self._next_seq
            line = _record_line(seq, record)
            faults.maybe_kill("journal-append-before")
            self._handle.write(line)
            self._handle.flush()
            faults.maybe_kill("journal-append-unsynced")
            if self.fsync:
                os.fsync(self._handle.fileno())
            faults.maybe_kill("journal-append-after")
            self._next_seq = seq + 1
            self._records.append(record)
            return seq

    def rewrite(self, records: "Iterable[dict]") -> None:
        """Atomically replace the journal's contents (compaction).

        Closes the append handle, rotates the file through
        :func:`rotate_journal`, and re-opens for appends — used by
        service recovery to drop records about jobs that no longer
        matter while staying crash-safe throughout.
        """
        with self._lock:
            materialized = list(records)
            self.close()
            rotate_journal(self.path, materialized, fsync=self.fsync)
            self._records = materialized
            self._next_seq = len(materialized)
            self._handle = open(self.path, "ab")
            self._opened = True

    # -- observation ---------------------------------------------------

    @property
    def records(self) -> Tuple[dict, ...]:
        """Every record currently in the journal, in append order."""
        with self._lock:
            if not self._opened:
                self.open()
            return tuple(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records) if self._opened else len(
                replay_journal(self.path).records
            )
