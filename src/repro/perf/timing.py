"""MICA benchmark harness: per-analyzer wall time and throughput.

:func:`run_mica_bench` times every Table II analyzer — and the retained
scalar reference implementations of the two historically dominant ones
(PPM and ILP) — on one synthetic trace, reporting the best-of-N wall
time and the instructions-per-second throughput for each.
:func:`run_generation_bench` does the same for the trace-generation
engine (full ``generate_trace``, the batch interpreter and expansion
against their scalar references, and a cold-vs-warm ``build_dataset``
pass over the trace/characterization caches).  The combined result
serializes to the repo-level ``BENCH_mica.json`` so each PR can record
its point on the performance trajectory.

How to read the output:

* ``analyzers.<name>.seconds`` — best-of-``repeats`` wall time of one
  full-trace analysis.
* ``analyzers.<name>.instructions_per_second`` — trace length divided
  by that time (the honest cross-machine comparable).
* ``speedups.ppm`` / ``speedups.ilp`` — reference time over vectorized
  time for the same work; the acceptance floor for this engine is 10x
  (PPM) and 5x (ILP).
* ``characterize`` — one end-to-end 47-characteristic vector, the
  number dataset builds actually feel per benchmark.
* ``generation.phases.<name>`` — generation-engine timings:
  ``generate_trace`` (full pipeline), ``interpret`` / ``expand`` (the
  batch phases) and their ``*_reference`` scalar specifications.
* ``generation.speedups.engine`` — reference-over-vectorized for the
  two rewritten phases combined; the acceptance floor is 10x at the
  default 100k-instruction trace (``interpret`` / ``expand`` report
  the per-phase ratios).
* ``generation.dataset`` — wall time of a small ``build_dataset``
  with cold caches vs warm (trace + characterization + HPC caches
  populated, dataset-level matrices dropped).  ``warm_over_cold``
  below one is the cache hierarchy working.
* ``hpc.engines.<name>`` — HPC event-engine timings:
  ``events_ev56`` / ``events_ev67`` (one full
  :func:`~repro.uarch.events.simulate_events` assembly per machine),
  ``collect_hpc`` (end-to-end seven-metric collection), the component
  engines (``cache_l1d``, ``tlb``, ``predictor_bimodal``,
  ``predictor_tournament``, ``producer_indices``) and the
  ``*_reference`` scalar specifications of each.
* ``hpc.engines.pipeline_ev56`` / ``pipeline_ev67`` (schema v4) — one
  pipeline-model run over precomputed events (``InOrderModel.run`` /
  ``OutOfOrderModel.run``, the batch walk engines), isolating the
  pipeline models from the event simulation; the ``*_reference``
  entries time the retained scalar loops on the same events.
* ``hpc.speedups.<engine>`` — reference-over-vectorized per engine;
  ``hpc.speedups.events`` combines both machines' event assemblies
  (acceptance floor: 5x at the default 100k-instruction trace);
  ``hpc.speedups.pipelines`` (v4) combines both pipeline models —
  reference loops over batch walks on precomputed events.
* ``hpc.cache`` — one ``cached_collect_hpc`` cold vs warm through a
  throwaway HPC cache directory (a warm hit skips both pipeline
  models entirely).
* ``phases.engines.<name>`` (schema v5) — phase-engine timings:
  ``mica_timeline`` (the segmented interval-characterization engine on
  the default six-key timeline), ``mica_timeline_reference`` (the
  retained per-chunk loop), ``interval_mica`` (full 47-column
  per-interval vectors, the MICA phase-detection substrate), the
  BBV/mix signature extractors and one end-to-end BBV
  ``detect_phases``.
* ``phases.speedups.timeline`` / top-level ``speedups.phases`` —
  chunked-reference-over-engine for the default timeline; the
  acceptance floor is 5x at 100k instructions x 5k-instruction
  intervals.
* ``sharded.engines.<name>`` (schema v6) — shard-engine timings:
  ``characterize_one_shot`` (the whole-trace baseline),
  ``sharded_stream`` (shard + merge through the sequential streaming
  fold — its gap to one-shot *is* the merge overhead) and
  ``sharded_jobs2`` / ``sharded_jobs4`` (the two-round intra-trace
  fan-out across worker processes).
* ``sharded.speedups.merge_overhead`` / top-level
  ``speedups.sharded`` — one-shot time over sequential sharded time
  (below one by the cost of carrying and merging per-shard state; the
  committed floor gates it from regressing).
  ``sharded.speedups.jobs2`` / ``jobs4`` — one-shot time over the
  parallel fan-out (above one once the trace amortizes pool startup;
  the acceptance evidence for multi-core intra-trace scaling).
"""

from __future__ import annotations

import json
import platform
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..config import DEFAULT_CONFIG, ReproConfig
from ..mica import characterize
from ..mica.ilp import ilp_ipc, ilp_ipc_reference, producer_indices
from ..mica.instruction_mix import instruction_mix
from ..mica.ppm import ppm_predictabilities, ppm_predictabilities_reference
from ..mica.register_traffic import register_traffic
from ..mica.strides import stride_profile
from ..mica.working_set import working_set
from ..trace import Trace

#: Default benchmark workload: a registry profile with a typical mix.
DEFAULT_BENCH_PROFILE = "spec2000/vpr/place"


@dataclass(frozen=True)
class AnalyzerTiming:
    """Best-of-N wall time for one analyzer over one trace."""

    name: str
    seconds: float
    instructions: int

    @property
    def instructions_per_second(self) -> float:
        return self.instructions / self.seconds if self.seconds else 0.0

    def as_dict(self) -> dict:
        return {
            "seconds": self.seconds,
            "instructions_per_second": self.instructions_per_second,
        }


@dataclass(frozen=True)
class GenerationBenchResult:
    """Generation-engine timings: batch phases vs scalar references.

    Attributes:
        trace_length: instructions generated per timing.
        profile: registry benchmark supplying the workload profile.
        repeats: timing repetitions (the best is kept).
        timings: per-phase wall times (``generate_trace``,
            ``interpret``, ``interpret_reference``, ``expand``,
            ``expand_reference``).
        speedups: reference-over-vectorized ratios per phase plus the
            combined ``engine`` ratio.
        dataset: cold-vs-warm ``build_dataset`` wall times over the
            trace/characterization caches.
    """

    trace_length: int
    profile: str
    repeats: int
    timings: Tuple[AnalyzerTiming, ...]
    speedups: Dict[str, float] = field(default_factory=dict)
    dataset: Dict[str, float] = field(default_factory=dict)

    def timing(self, name: str) -> AnalyzerTiming:
        for entry in self.timings:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def as_dict(self) -> dict:
        return {
            "trace_length": self.trace_length,
            "profile": self.profile,
            "repeats": self.repeats,
            "phases": {
                entry.name: entry.as_dict() for entry in self.timings
            },
            "speedups": dict(self.speedups),
            "dataset": dict(self.dataset),
        }

    def format(self) -> str:
        """Human-readable report section."""
        lines = [
            f"  generation engine — {self.trace_length:,} instructions"
        ]
        for entry in self.timings:
            lines.append(
                f"  {entry.name:<22} {entry.seconds * 1e3:>9.2f} ms"
                f"  {entry.instructions_per_second / 1e6:>8.1f} Minstr/s"
            )
        for name, ratio in self.speedups.items():
            lines.append(
                f"  gen speedup[{name}]: {ratio:.1f}x vs reference"
            )
        if self.dataset:
            lines.append(
                f"  dataset build ({int(self.dataset['benchmarks'])} "
                f"benchmarks x {int(self.dataset['trace_length']):,}): "
                f"cold {self.dataset['cold_seconds'] * 1e3:.0f} ms, "
                f"warm {self.dataset['warm_seconds'] * 1e3:.0f} ms"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class HpcBenchResult:
    """HPC event-engine timings: batch engines vs scalar references.

    Attributes:
        trace_length: instructions simulated per timing.
        profile: registry benchmark supplying the workload profile.
        repeats: timing repetitions (the best is kept).
        timings: per-engine wall times (``events_ev56``/``events_ev67``,
            ``pipeline_ev56``/``pipeline_ev67`` (one pipeline-model run
            over precomputed events) and their ``*_reference`` scalar
            specifications, ``collect_hpc``, the cache/TLB/predictor
            component engines and ``producer_indices``).
        speedups: reference-over-vectorized ratios per engine plus the
            combined ``events`` ratio (acceptance floor: 5x at 100k
            instructions) and the combined ``pipelines`` ratio.
        cache: cold-vs-warm ``cached_collect_hpc`` wall times over the
            on-disk HPC cache.
    """

    trace_length: int
    profile: str
    repeats: int
    timings: Tuple[AnalyzerTiming, ...]
    speedups: Dict[str, float] = field(default_factory=dict)
    cache: Dict[str, float] = field(default_factory=dict)

    def timing(self, name: str) -> AnalyzerTiming:
        for entry in self.timings:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def as_dict(self) -> dict:
        return {
            "trace_length": self.trace_length,
            "profile": self.profile,
            "repeats": self.repeats,
            "engines": {
                entry.name: entry.as_dict() for entry in self.timings
            },
            "speedups": dict(self.speedups),
            "cache": dict(self.cache),
        }

    def format(self) -> str:
        """Human-readable report section."""
        lines = [f"  HPC engine — {self.trace_length:,} instructions"]
        for entry in self.timings:
            lines.append(
                f"  {entry.name:<22} {entry.seconds * 1e3:>9.2f} ms"
                f"  {entry.instructions_per_second / 1e6:>8.1f} Minstr/s"
            )
        for name, ratio in self.speedups.items():
            lines.append(
                f"  hpc speedup[{name}]: {ratio:.1f}x vs reference"
            )
        if self.cache:
            lines.append(
                f"  hpc cache: cold {self.cache['cold_seconds'] * 1e3:.1f} ms,"
                f" warm {self.cache['warm_seconds'] * 1e3:.1f} ms"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PhasesBenchResult:
    """Phase-engine timings: segmented engine vs the chunked reference.

    Attributes:
        trace_length: instructions analyzed per timing.
        profile: registry benchmark supplying the workload profile.
        repeats: timing repetitions (the best is kept).
        interval: instructions per interval.
        timings: per-path wall times (``mica_timeline`` — the segmented
            engine on the default six-key timeline —
            ``mica_timeline_reference`` — the retained per-chunk loop —
            ``interval_mica`` — full 47-column per-interval vectors,
            the ``detect_phases(signature="mica")`` substrate —
            ``basic_block_vectors``, ``interval_mix`` and an
            end-to-end ``detect_phases`` BBV clustering).
        speedups: reference-over-engine ratios (``timeline`` — the
            acceptance-floor ratio, >= 5x at 100k instructions x
            5k-instruction intervals).
    """

    trace_length: int
    profile: str
    repeats: int
    interval: int
    timings: Tuple[AnalyzerTiming, ...]
    speedups: Dict[str, float] = field(default_factory=dict)

    def timing(self, name: str) -> AnalyzerTiming:
        for entry in self.timings:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def as_dict(self) -> dict:
        return {
            "trace_length": self.trace_length,
            "profile": self.profile,
            "repeats": self.repeats,
            "interval": self.interval,
            "engines": {
                entry.name: entry.as_dict() for entry in self.timings
            },
            "speedups": dict(self.speedups),
        }

    def format(self) -> str:
        """Human-readable report section."""
        lines = [
            f"  phase engine — {self.trace_length:,} instructions x "
            f"{self.interval:,}-instruction intervals"
        ]
        for entry in self.timings:
            lines.append(
                f"  {entry.name:<22} {entry.seconds * 1e3:>9.2f} ms"
                f"  {entry.instructions_per_second / 1e6:>8.1f} Minstr/s"
            )
        for name, ratio in self.speedups.items():
            lines.append(
                f"  phase speedup[{name}]: {ratio:.1f}x vs reference"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ShardedBenchResult:
    """Shard-engine timings: merge overhead and intra-trace scaling.

    Attributes:
        trace_length: instructions characterized per timing.
        profile: registry benchmark supplying the workload profile.
        repeats: timing repetitions (the best is kept).
        shards: contiguous shards per sharded run.
        timings: per-path wall times (``characterize_one_shot`` — the
            whole-trace baseline — ``sharded_stream`` — the sequential
            shard+merge fold, whose gap to one-shot is the merge
            overhead — and ``sharded_jobs<N>`` — the two-round
            intra-trace fan-out across N worker processes).
        speedups: one-shot-over-sharded ratios (``merge_overhead`` for
            the sequential fold, the floor-gated number;
            ``jobs<N>`` for each parallel fan-out — above one is
            measured multi-core intra-trace scaling).
    """

    trace_length: int
    profile: str
    repeats: int
    shards: int
    timings: Tuple[AnalyzerTiming, ...]
    speedups: Dict[str, float] = field(default_factory=dict)

    def timing(self, name: str) -> AnalyzerTiming:
        for entry in self.timings:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def as_dict(self) -> dict:
        return {
            "trace_length": self.trace_length,
            "profile": self.profile,
            "repeats": self.repeats,
            "shards": self.shards,
            "engines": {
                entry.name: entry.as_dict() for entry in self.timings
            },
            "speedups": dict(self.speedups),
        }

    def format(self) -> str:
        """Human-readable report section."""
        lines = [
            f"  shard engine — {self.trace_length:,} instructions x "
            f"{self.shards} shards"
        ]
        for entry in self.timings:
            lines.append(
                f"  {entry.name:<22} {entry.seconds * 1e3:>9.2f} ms"
                f"  {entry.instructions_per_second / 1e6:>8.1f} Minstr/s"
            )
        for name, ratio in self.speedups.items():
            lines.append(
                f"  sharded speedup[{name}]: {ratio:.2f}x vs one-shot"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class MicaBenchResult:
    """One harness run: per-analyzer timings plus derived speedups."""

    trace_length: int
    profile: str
    repeats: int
    timings: Tuple[AnalyzerTiming, ...]
    speedups: Dict[str, float] = field(default_factory=dict)
    generation: "Optional[GenerationBenchResult]" = None
    hpc: "Optional[HpcBenchResult]" = None
    phases: "Optional[PhasesBenchResult]" = None
    sharded: "Optional[ShardedBenchResult]" = None

    def timing(self, name: str) -> AnalyzerTiming:
        for entry in self.timings:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def as_dict(self) -> dict:
        payload = {
            "schema": "BENCH_mica/v6",
            "meta": {
                "trace_length": self.trace_length,
                "profile": self.profile,
                "repeats": self.repeats,
                "python": platform.python_version(),
                "machine": platform.machine(),
            },
            "analyzers": {
                entry.name: entry.as_dict() for entry in self.timings
            },
            "speedups": dict(self.speedups),
        }
        if self.generation is not None:
            payload["generation"] = self.generation.as_dict()
        if self.hpc is not None:
            payload["hpc"] = self.hpc.as_dict()
        if self.phases is not None:
            payload["phases"] = self.phases.as_dict()
        if self.sharded is not None:
            payload["sharded"] = self.sharded.as_dict()
        return payload

    def format(self) -> str:
        """Human-readable table of the run."""
        lines = [
            f"MICA perf harness — {self.profile}, "
            f"{self.trace_length:,} instructions, best of {self.repeats}"
        ]
        for entry in self.timings:
            lines.append(
                f"  {entry.name:<22} {entry.seconds * 1e3:>9.2f} ms"
                f"  {entry.instructions_per_second / 1e6:>8.1f} Minstr/s"
            )
        for name, ratio in self.speedups.items():
            lines.append(f"  speedup[{name}]: {ratio:.1f}x vs reference")
        if self.generation is not None:
            lines.append(self.generation.format())
        if self.hpc is not None:
            lines.append(self.hpc.format())
        if self.phases is not None:
            lines.append(self.phases.format())
        if self.sharded is not None:
            lines.append(self.sharded.format())
        return "\n".join(lines)


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def run_generation_bench(
    config: ReproConfig = DEFAULT_CONFIG,
    trace_length: "int | None" = None,
    profile_name: str = DEFAULT_BENCH_PROFILE,
    repeats: int = 3,
    include_reference: bool = True,
    dataset_benchmarks: int = 4,
    dataset_trace_length: int = 5_000,
) -> GenerationBenchResult:
    """Time the trace-generation engine against its scalar references.

    Measures, at ``trace_length`` instructions of ``profile_name``:
    the full ``generate_trace`` pipeline (warm code memo), the batch
    interpreter and expansion phases, and their retained scalar
    reference implementations — every timing starts from freshly reset
    behavior/branch-model state, resets excluded from the timed region.
    Also builds a small dataset twice through a throwaway cache
    directory: once cold, then again with the trace and
    characterization caches warm (dataset-level matrices dropped in
    between), the gap the trace cache exists to close.

    Args:
        config: supplies the default trace length.
        trace_length: generated-trace length (default: the config's).
        profile_name: registry benchmark supplying the workload profile.
        repeats: timing repetitions; the best (minimum) is reported.
        include_reference: also time the slow scalar interpret/expand
            references and report ``speedups`` (skip for quick
            trend-only runs).
        dataset_benchmarks: population size of the cold/warm build.
        dataset_trace_length: per-benchmark length of the cold/warm
            build (kept small; the build includes HPC simulation).
    """
    from ..experiments import build_dataset
    from ..experiments.dataset import _MEMORY_CACHE
    from ..synth import generate_trace
    from ..synth import generator as generator_module
    from ..synth.rng import make_rng
    from ..workloads import all_benchmarks, get_benchmark

    length = trace_length or config.trace_length
    profile = get_benchmark(profile_name).profile
    code = generator_module.code_for_profile(profile)

    def best_reset(fn: Callable[[], object]) -> float:
        bench = float("inf")
        for _ in range(repeats):
            code.reset_state()
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if elapsed < bench:
                bench = elapsed
        return bench

    rng = lambda: make_rng("bench", "generation")  # noqa: E731

    generate_seconds = best_reset(lambda: generate_trace(profile, length))
    interpret_seconds = best_reset(
        lambda: generator_module._interpret(rng(), code, profile, length)
    )
    code.reset_state()
    visits, outcomes = generator_module._interpret(rng(), code, profile, length)
    expand_seconds = best_reset(
        lambda: generator_module._expand(rng(), code, visits, outcomes, length)
    )
    phase_seconds = [
        ("generate_trace", generate_seconds),
        ("interpret", interpret_seconds),
        ("expand", expand_seconds),
    ]
    speedups: Dict[str, float] = {}
    if include_reference:
        interpret_ref_seconds = best_reset(
            lambda: generator_module._interpret_reference(
                rng(), code, profile, length
            )
        )
        expand_ref_seconds = best_reset(
            lambda: generator_module._expand_reference(
                rng(), code, visits, outcomes, length
            )
        )
        phase_seconds.extend([
            ("interpret_reference", interpret_ref_seconds),
            ("expand_reference", expand_ref_seconds),
        ])
        speedups = {
            "interpret": interpret_ref_seconds / interpret_seconds,
            "expand": expand_ref_seconds / expand_seconds,
            "engine": (interpret_ref_seconds + expand_ref_seconds)
            / (interpret_seconds + expand_seconds),
        }

    population = list(all_benchmarks())[:dataset_benchmarks]
    dataset_config = config.with_overrides(trace_length=dataset_trace_length)
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    try:
        _MEMORY_CACHE.clear()
        start = time.perf_counter()
        build_dataset(
            dataset_config, benchmarks=population, cache_dir=cache_dir, jobs=1
        )
        cold_seconds = time.perf_counter() - start
        # Drop the dataset-level matrices but keep the per-trace caches,
        # so the warm build exercises the trace + characterization
        # cache hierarchy rather than the top-level shortcut.
        for path in cache_dir.glob("dataset-*.npz"):
            path.unlink()
        _MEMORY_CACHE.clear()
        start = time.perf_counter()
        build_dataset(
            dataset_config, benchmarks=population, cache_dir=cache_dir, jobs=1
        )
        warm_seconds = time.perf_counter() - start
        _MEMORY_CACHE.clear()
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    timings = tuple(
        AnalyzerTiming(name=name, seconds=seconds, instructions=length)
        for name, seconds in phase_seconds
    )
    return GenerationBenchResult(
        trace_length=length,
        profile=profile_name,
        repeats=repeats,
        timings=timings,
        speedups=speedups,
        dataset={
            "benchmarks": float(len(population)),
            "trace_length": float(dataset_trace_length),
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_over_cold": warm_seconds / cold_seconds,
        },
    )


def run_hpc_bench(
    config: ReproConfig = DEFAULT_CONFIG,
    trace_length: "int | None" = None,
    profile_name: str = DEFAULT_BENCH_PROFILE,
    repeats: int = 3,
    include_reference: bool = True,
) -> HpcBenchResult:
    """Time the HPC engines against their scalar references.

    Measures, on one generated trace of ``trace_length`` instructions:
    the full :func:`~repro.uarch.events.simulate_events` assembly for
    both machines (batch engines vs the retained scalar
    specifications), one end-to-end :func:`~repro.uarch.collect_hpc`,
    both pipeline models over precomputed events (batch walk engines vs
    the retained ``run_reference`` loops — the events are threaded
    through so the pipeline engines are timed in isolation), the
    component engines in isolation (a 2-way L1D on the data stream, the
    fully-associative D-TLB, the bimodal and tournament predictors),
    and :func:`~repro.mica.ilp.producer_indices` — every simulator
    rebuilt fresh inside the timed region, exactly as the event
    simulation uses them.  Also runs ``cached_collect_hpc`` cold and
    warm through a throwaway directory, the gap the HPC cache exists to
    close.

    Args:
        config: supplies the default trace length.
        trace_length: simulated-trace length (default: the config's).
        profile_name: registry benchmark supplying the workload profile.
        repeats: timing repetitions; the best (minimum) is reported.
        include_reference: also time the slow scalar references and
            report ``speedups`` (skip for quick trend-only runs).
    """
    import numpy as np

    from ..mica.ilp import producer_indices_reference
    from ..synth import generate_trace
    from ..uarch import (
        EV56_CONFIG,
        EV67_CONFIG,
        InOrderModel,
        OutOfOrderModel,
        SetAssociativeCache,
        TLB,
        collect_hpc,
        simulate_predictor,
        simulate_predictor_reference,
    )
    from ..uarch.events import simulate_events
    from ..workloads import get_benchmark

    length = trace_length or config.trace_length
    benchmark = get_benchmark(profile_name)
    trace = generate_trace(benchmark.profile, length)
    data_addresses = trace.mem_addr[np.flatnonzero(trace.memory_mask)]
    branch_positions = np.flatnonzero(trace.branch_mask)
    branch_pcs = trace.pc[branch_positions]
    branch_taken = trace.taken[branch_positions].astype(bool)
    # Precomputed events isolate the pipeline engines from the event
    # simulation, exactly as collect_hpc callers can thread them.
    events_ev56 = simulate_events(trace, EV56_CONFIG)
    events_ev67 = simulate_events(trace, EV67_CONFIG)

    def cache_case(machine_cache, stream, engine):
        def run():
            cache = SetAssociativeCache(machine_cache)
            return getattr(cache, engine)(stream)
        return run

    def tlb_case(engine):
        def run():
            tlb = TLB(EV56_CONFIG.tlb_entries, EV56_CONFIG.tlb_page_bytes)
            return getattr(tlb, engine)(data_addresses)
        return run

    def predictor_case(machine, runner):
        def run():
            return runner(
                machine.make_predictor(), branch_pcs, branch_taken,
                return_mask=True,
            )
        return run

    cases: List[Tuple[str, Callable[[], object]]] = [
        ("events_ev56", lambda: simulate_events(trace, EV56_CONFIG)),
        ("events_ev67", lambda: simulate_events(trace, EV67_CONFIG)),
        ("collect_hpc", lambda: collect_hpc(trace)),
        ("pipeline_ev56",
         lambda: InOrderModel(EV56_CONFIG).run(trace, events=events_ev56)),
        ("pipeline_ev67",
         lambda: OutOfOrderModel(EV67_CONFIG).run(trace, events=events_ev67)),
        ("cache_l1d", cache_case(EV67_CONFIG.l1d, data_addresses,
                                 "simulate")),
        ("tlb", tlb_case("simulate")),
        ("predictor_bimodal",
         predictor_case(EV56_CONFIG, simulate_predictor)),
        ("predictor_tournament",
         predictor_case(EV67_CONFIG, simulate_predictor)),
        ("producer_indices", lambda: producer_indices(trace)),
    ]
    if include_reference:
        cases.extend([
            ("events_ev56_reference",
             lambda: simulate_events(trace, EV56_CONFIG, engine="reference")),
            ("events_ev67_reference",
             lambda: simulate_events(trace, EV67_CONFIG, engine="reference")),
            ("pipeline_ev56_reference",
             lambda: InOrderModel(EV56_CONFIG).run_reference(
                 trace, events=events_ev56)),
            ("pipeline_ev67_reference",
             lambda: OutOfOrderModel(EV67_CONFIG).run_reference(
                 trace, events=events_ev67)),
            ("cache_l1d_reference",
             cache_case(EV67_CONFIG.l1d, data_addresses,
                        "simulate_reference")),
            ("tlb_reference", tlb_case("simulate_reference")),
            ("predictor_bimodal_reference",
             predictor_case(EV56_CONFIG, simulate_predictor_reference)),
            ("predictor_tournament_reference",
             predictor_case(EV67_CONFIG, simulate_predictor_reference)),
            ("producer_indices_reference",
             lambda: producer_indices_reference(trace)),
        ])

    seconds = {
        name: _best_of(fn, repeats) for name, fn in cases
    }
    timings = tuple(
        AnalyzerTiming(name=name, seconds=seconds[name], instructions=length)
        for name, _ in cases
    )
    speedups: Dict[str, float] = {}
    if include_reference:
        for engine in (
            "events_ev56", "events_ev67", "pipeline_ev56", "pipeline_ev67",
            "cache_l1d", "tlb", "predictor_bimodal", "predictor_tournament",
            "producer_indices",
        ):
            speedups[engine] = (
                seconds[f"{engine}_reference"] / seconds[engine]
            )
        speedups["events"] = (
            seconds["events_ev56_reference"]
            + seconds["events_ev67_reference"]
        ) / (seconds["events_ev56"] + seconds["events_ev67"])
        speedups["pipelines"] = (
            seconds["pipeline_ev56_reference"]
            + seconds["pipeline_ev67_reference"]
        ) / (seconds["pipeline_ev56"] + seconds["pipeline_ev67"])

    from .cache import cached_collect_hpc

    cache_dir = Path(tempfile.mkdtemp(prefix="repro-bench-hpc-"))
    try:
        start = time.perf_counter()
        cached_collect_hpc(trace, cache_dir=cache_dir)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        cached_collect_hpc(trace, cache_dir=cache_dir)
        warm_seconds = time.perf_counter() - start
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    return HpcBenchResult(
        trace_length=length,
        profile=profile_name,
        repeats=repeats,
        timings=timings,
        speedups=speedups,
        cache={
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_over_cold": warm_seconds / cold_seconds,
        },
    )


def run_phases_bench(
    config: ReproConfig = DEFAULT_CONFIG,
    trace_length: "int | None" = None,
    profile_name: str = DEFAULT_BENCH_PROFILE,
    repeats: int = 3,
    include_reference: bool = True,
    interval: int = 5_000,
) -> PhasesBenchResult:
    """Time the segmented phase engine against the chunked reference.

    Measures, on one generated trace of ``trace_length`` instructions
    at ``interval``-instruction intervals: the default six-key
    :func:`~repro.phases.mica_timeline` on the segmented engine vs the
    retained per-chunk :func:`~repro.phases.mica_timeline_reference`
    (the acceptance-floor ratio: >= 5x at 100k x 5k), full per-interval
    47-column MICA vectors (the ``detect_phases(signature="mica")``
    substrate), the cheap BBV/mix signature extractors, and one
    end-to-end BBV ``detect_phases`` (k-means + BIC included).

    Args:
        config: supplies the default trace length and MICA parameters.
        trace_length: analyzed-trace length (default: the config's).
        profile_name: registry benchmark supplying the workload profile.
        repeats: timing repetitions; the best (minimum) is reported.
        include_reference: also time the per-chunk reference timeline
            and report ``speedups`` (skip for quick trend-only runs).
        interval: instructions per interval.
    """
    from ..phases import (
        basic_block_vectors,
        detect_phases,
        interval_mica_vectors,
        interval_mix,
        mica_timeline,
        mica_timeline_reference,
    )
    from ..synth import generate_trace
    from ..workloads import get_benchmark

    length = trace_length or config.trace_length
    benchmark = get_benchmark(profile_name)
    trace = generate_trace(benchmark.profile, length)
    if length < 2 * interval:
        # Small smoke traces: shrink to four intervals so the section
        # still measures a segmented run rather than erroring out.
        interval = max(1, length // 4)

    # Wake the CPU governor before timing: the engine runs are short
    # enough that a cold core never reaches steady clocks inside their
    # own repeats, which would systematically bias the ratio against
    # the faster path (the long reference runs warm the core for free).
    deadline = time.perf_counter() + 1.0
    while time.perf_counter() < deadline:
        mica_timeline(trace, interval, config=config)

    cases: List[Tuple[str, Callable[[], object]]] = [
        ("mica_timeline",
         lambda: mica_timeline(trace, interval, config=config)),
        ("interval_mica",
         lambda: interval_mica_vectors(trace, interval, config)),
        ("basic_block_vectors",
         lambda: basic_block_vectors(trace, interval)),
        ("interval_mix", lambda: interval_mix(trace, interval)),
        ("detect_phases",
         lambda: detect_phases(trace, interval=interval, config=config)),
    ]
    if include_reference:
        cases.append((
            "mica_timeline_reference",
            lambda: mica_timeline_reference(trace, interval, config=config),
        ))

    seconds = {name: _best_of(fn, repeats) for name, fn in cases}
    timings = tuple(
        AnalyzerTiming(name=name, seconds=seconds[name], instructions=length)
        for name, _ in cases
    )
    speedups: Dict[str, float] = {}
    if include_reference:
        speedups["timeline"] = (
            seconds["mica_timeline_reference"] / seconds["mica_timeline"]
        )
    return PhasesBenchResult(
        trace_length=length,
        profile=profile_name,
        repeats=repeats,
        interval=interval,
        timings=timings,
        speedups=speedups,
    )


def run_sharded_bench(
    config: ReproConfig = DEFAULT_CONFIG,
    trace_length: "int | None" = None,
    profile_name: str = DEFAULT_BENCH_PROFILE,
    repeats: int = 3,
    shards: int = 4,
    worker_counts: Tuple[int, ...] = (2, 4),
) -> ShardedBenchResult:
    """Time the shard-mergeable engine against one-shot ``characterize``.

    Measures, on one generated trace: the whole-trace one-shot
    baseline, the sequential shard+merge streaming fold (``shards``
    contiguous shards — the gap to one-shot is the state-carry and
    merge overhead) and the two-round intra-trace fan-out at each of
    ``worker_counts`` processes.  All four produce bit-for-bit the
    same 47 values; only the wall time differs.

    Args:
        config: characterization parameters.
        trace_length: characterized-trace length (default: the
            config's).
        profile_name: registry benchmark supplying the workload profile.
        repeats: timing repetitions; the best (minimum) is reported.
        shards: contiguous shards per sharded run.
        worker_counts: process counts for the parallel fan-out runs.
    """
    from ..synth import generate_trace
    from ..workloads import get_benchmark
    from .sharding import sharded_characterize

    length = trace_length or config.trace_length
    benchmark = get_benchmark(profile_name)
    trace = generate_trace(benchmark.profile, length)

    # Wake the CPU governor before timing (see run_phases_bench): the
    # one-shot and streaming runs are short enough that cold clocks
    # would bias the merge-overhead ratio.
    deadline = time.perf_counter() + 1.0
    while time.perf_counter() < deadline:
        characterize(trace, config)

    cases: List[Tuple[str, Callable[[], object]]] = [
        ("characterize_one_shot", lambda: characterize(trace, config)),
        (
            "sharded_stream",
            lambda: sharded_characterize(trace, config, shards=shards),
        ),
    ]
    for jobs in worker_counts:
        cases.append((
            f"sharded_jobs{jobs}",
            lambda jobs=jobs: sharded_characterize(
                trace, config, shards=shards, jobs=jobs
            ),
        ))
    seconds = {name: _best_of(fn, repeats) for name, fn in cases}
    timings = tuple(
        AnalyzerTiming(name=name, seconds=seconds[name],
                       instructions=length)
        for name, _ in cases
    )
    one_shot = seconds["characterize_one_shot"]
    speedups: Dict[str, float] = {
        "merge_overhead": one_shot / seconds["sharded_stream"],
    }
    for jobs in worker_counts:
        speedups[f"jobs{jobs}"] = one_shot / seconds[f"sharded_jobs{jobs}"]
    return ShardedBenchResult(
        trace_length=length,
        profile=profile_name,
        repeats=repeats,
        shards=shards,
        timings=timings,
        speedups=speedups,
    )


def run_mica_bench(
    trace: "Trace | None" = None,
    config: ReproConfig = DEFAULT_CONFIG,
    trace_length: "int | None" = None,
    profile_name: str = DEFAULT_BENCH_PROFILE,
    repeats: int = 3,
    include_reference: bool = True,
    include_generation: bool = False,
    include_hpc: bool = False,
    include_phases: bool = False,
    include_sharded: bool = False,
) -> MicaBenchResult:
    """Time every MICA analyzer on one trace.

    Args:
        trace: trace to analyze (default: generate ``trace_length``
            instructions of ``profile_name`` from the registry).
        config: characterization parameters.
        trace_length: generated-trace length (default: the config's).
        profile_name: registry benchmark supplying the workload profile.
        repeats: timing repetitions; the best (minimum) is reported.
        include_reference: also time the scalar PPM/ILP references and
            report ``speedups`` (skip for quick trend-only runs).
        include_generation: also run :func:`run_generation_bench` and
            attach its result (the CLI harness enables this).
        include_hpc: also run :func:`run_hpc_bench` and attach its
            result (the CLI harness enables this).
        include_phases: also run :func:`run_phases_bench` and attach
            its result (the CLI harness enables this); its timeline
            ratio is surfaced as the top-level ``speedups.phases``.
        include_sharded: also run :func:`run_sharded_bench` and attach
            its result (the CLI harness enables this); its
            merge-overhead ratio is surfaced as the top-level
            ``speedups.sharded``.
    """
    if repeats < 1:
        from ..errors import ConfigurationError

        raise ConfigurationError("bench repeats must be >= 1")
    if trace is None:
        from ..synth import generate_trace
        from ..workloads import get_benchmark

        length = trace_length or config.trace_length
        benchmark = get_benchmark(profile_name)
        trace = generate_trace(benchmark.profile, length)
    n = len(trace)
    producers = producer_indices(trace)

    cases: List[Tuple[str, Callable[[], object]]] = [
        ("instruction_mix", lambda: instruction_mix(trace)),
        ("producer_indices", lambda: producer_indices(trace)),
        (
            "ilp_ipc",
            lambda: ilp_ipc(
                trace, config.ilp_window_sizes, producers=producers
            ),
        ),
        (
            "register_traffic",
            lambda: register_traffic(
                trace, config.reg_dep_thresholds, producers=producers
            ),
        ),
        (
            "working_set",
            lambda: working_set(trace, config.block_bytes, config.page_bytes),
        ),
        (
            "stride_profile",
            lambda: stride_profile(trace, config.stride_thresholds),
        ),
        (
            "ppm_predictabilities",
            lambda: ppm_predictabilities(trace, config.ppm_max_order),
        ),
        ("characterize", lambda: characterize(trace, config)),
    ]
    if include_reference:
        cases.extend([
            (
                "ilp_ipc_reference",
                lambda: ilp_ipc_reference(
                    trace, config.ilp_window_sizes, producers=producers
                ),
            ),
            (
                "ppm_reference",
                lambda: ppm_predictabilities_reference(
                    trace, config.ppm_max_order
                ),
            ),
        ])

    timings = tuple(
        AnalyzerTiming(name=name, seconds=_best_of(fn, repeats),
                       instructions=n)
        for name, fn in cases
    )
    result = MicaBenchResult(
        trace_length=n,
        profile=trace.name or profile_name,
        repeats=repeats,
        timings=timings,
    )
    speedups: Dict[str, float] = {}
    if include_reference:
        speedups = {
            "ppm": (
                result.timing("ppm_reference").seconds
                / result.timing("ppm_predictabilities").seconds
            ),
            "ilp": (
                result.timing("ilp_ipc_reference").seconds
                / result.timing("ilp_ipc").seconds
            ),
        }
    generation = None
    if include_generation:
        generation = run_generation_bench(
            config=config,
            trace_length=trace_length,
            profile_name=profile_name,
            repeats=repeats,
            include_reference=include_reference,
        )
    hpc = None
    if include_hpc:
        hpc = run_hpc_bench(
            config=config,
            trace_length=trace_length,
            profile_name=profile_name,
            repeats=repeats,
            include_reference=include_reference,
        )
    phases = None
    if include_phases:
        phases = run_phases_bench(
            config=config,
            trace_length=trace_length,
            profile_name=profile_name,
            repeats=repeats,
            include_reference=include_reference,
        )
        if "timeline" in phases.speedups:
            speedups["phases"] = phases.speedups["timeline"]
    sharded = None
    if include_sharded:
        sharded = run_sharded_bench(
            config=config,
            trace_length=trace_length,
            profile_name=profile_name,
            repeats=repeats,
        )
        speedups["sharded"] = sharded.speedups["merge_overhead"]
    if (
        include_reference or include_generation or include_hpc
        or include_phases or include_sharded
    ):
        result = MicaBenchResult(
            trace_length=result.trace_length,
            profile=result.profile,
            repeats=result.repeats,
            timings=result.timings,
            speedups=speedups,
            generation=generation,
            hpc=hpc,
            phases=phases,
            sharded=sharded,
        )
    return result


def write_bench_json(
    result: MicaBenchResult, path: "Path | str"
) -> Path:
    """Serialize one harness run to ``BENCH_mica.json``."""
    destination = Path(path)
    # repro: lint-ok[durability] user-requested report export to an
    # explicit path; not cache state, so no integrity stamp is owed
    destination.write_text(json.dumps(result.as_dict(), indent=2) + "\n")
    return destination
