"""MICA benchmark harness: per-analyzer wall time and throughput.

:func:`run_mica_bench` times every Table II analyzer — and the retained
scalar reference implementations of the two historically dominant ones
(PPM and ILP) — on one synthetic trace, reporting the best-of-N wall
time and the instructions-per-second throughput for each.  The result
serializes to the repo-level ``BENCH_mica.json`` so each PR can record
its point on the performance trajectory.

How to read the output:

* ``analyzers.<name>.seconds`` — best-of-``repeats`` wall time of one
  full-trace analysis.
* ``analyzers.<name>.instructions_per_second`` — trace length divided
  by that time (the honest cross-machine comparable).
* ``speedups.ppm`` / ``speedups.ilp`` — reference time over vectorized
  time for the same work; the acceptance floor for this engine is 10x
  (PPM) and 5x (ILP).
* ``characterize`` — one end-to-end 47-characteristic vector, the
  number dataset builds actually feel per benchmark.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from ..config import DEFAULT_CONFIG, ReproConfig
from ..mica import characterize
from ..mica.ilp import ilp_ipc, ilp_ipc_reference, producer_indices
from ..mica.instruction_mix import instruction_mix
from ..mica.ppm import ppm_predictabilities, ppm_predictabilities_reference
from ..mica.register_traffic import register_traffic
from ..mica.strides import stride_profile
from ..mica.working_set import working_set
from ..trace import Trace

#: Default benchmark workload: a registry profile with a typical mix.
DEFAULT_BENCH_PROFILE = "spec2000/vpr/place"


@dataclass(frozen=True)
class AnalyzerTiming:
    """Best-of-N wall time for one analyzer over one trace."""

    name: str
    seconds: float
    instructions: int

    @property
    def instructions_per_second(self) -> float:
        return self.instructions / self.seconds if self.seconds else 0.0

    def as_dict(self) -> dict:
        return {
            "seconds": self.seconds,
            "instructions_per_second": self.instructions_per_second,
        }


@dataclass(frozen=True)
class MicaBenchResult:
    """One harness run: per-analyzer timings plus derived speedups."""

    trace_length: int
    profile: str
    repeats: int
    timings: Tuple[AnalyzerTiming, ...]
    speedups: Dict[str, float] = field(default_factory=dict)

    def timing(self, name: str) -> AnalyzerTiming:
        for entry in self.timings:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def as_dict(self) -> dict:
        return {
            "schema": "BENCH_mica/v1",
            "meta": {
                "trace_length": self.trace_length,
                "profile": self.profile,
                "repeats": self.repeats,
                "python": platform.python_version(),
                "machine": platform.machine(),
            },
            "analyzers": {
                entry.name: entry.as_dict() for entry in self.timings
            },
            "speedups": dict(self.speedups),
        }

    def format(self) -> str:
        """Human-readable table of the run."""
        lines = [
            f"MICA perf harness — {self.profile}, "
            f"{self.trace_length:,} instructions, best of {self.repeats}"
        ]
        for entry in self.timings:
            lines.append(
                f"  {entry.name:<22} {entry.seconds * 1e3:>9.2f} ms"
                f"  {entry.instructions_per_second / 1e6:>8.1f} Minstr/s"
            )
        for name, ratio in self.speedups.items():
            lines.append(f"  speedup[{name}]: {ratio:.1f}x vs reference")
        return "\n".join(lines)


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def run_mica_bench(
    trace: "Trace | None" = None,
    config: ReproConfig = DEFAULT_CONFIG,
    trace_length: "int | None" = None,
    profile_name: str = DEFAULT_BENCH_PROFILE,
    repeats: int = 3,
    include_reference: bool = True,
) -> MicaBenchResult:
    """Time every MICA analyzer on one trace.

    Args:
        trace: trace to analyze (default: generate ``trace_length``
            instructions of ``profile_name`` from the registry).
        config: characterization parameters.
        trace_length: generated-trace length (default: the config's).
        profile_name: registry benchmark supplying the workload profile.
        repeats: timing repetitions; the best (minimum) is reported.
        include_reference: also time the scalar PPM/ILP references and
            report ``speedups`` (skip for quick trend-only runs).
    """
    if repeats < 1:
        from ..errors import ConfigurationError

        raise ConfigurationError("bench repeats must be >= 1")
    if trace is None:
        from ..synth import generate_trace
        from ..workloads import get_benchmark

        length = trace_length or config.trace_length
        benchmark = get_benchmark(profile_name)
        trace = generate_trace(benchmark.profile, length)
    n = len(trace)
    producers = producer_indices(trace)

    cases: List[Tuple[str, Callable[[], object]]] = [
        ("instruction_mix", lambda: instruction_mix(trace)),
        ("producer_indices", lambda: producer_indices(trace)),
        (
            "ilp_ipc",
            lambda: ilp_ipc(
                trace, config.ilp_window_sizes, producers=producers
            ),
        ),
        (
            "register_traffic",
            lambda: register_traffic(
                trace, config.reg_dep_thresholds, producers=producers
            ),
        ),
        (
            "working_set",
            lambda: working_set(trace, config.block_bytes, config.page_bytes),
        ),
        (
            "stride_profile",
            lambda: stride_profile(trace, config.stride_thresholds),
        ),
        (
            "ppm_predictabilities",
            lambda: ppm_predictabilities(trace, config.ppm_max_order),
        ),
        ("characterize", lambda: characterize(trace, config)),
    ]
    if include_reference:
        cases.extend([
            (
                "ilp_ipc_reference",
                lambda: ilp_ipc_reference(
                    trace, config.ilp_window_sizes, producers=producers
                ),
            ),
            (
                "ppm_reference",
                lambda: ppm_predictabilities_reference(
                    trace, config.ppm_max_order
                ),
            ),
        ])

    timings = tuple(
        AnalyzerTiming(name=name, seconds=_best_of(fn, repeats),
                       instructions=n)
        for name, fn in cases
    )
    result = MicaBenchResult(
        trace_length=n,
        profile=trace.name or profile_name,
        repeats=repeats,
        timings=timings,
    )
    if include_reference:
        speedups = {
            "ppm": (
                result.timing("ppm_reference").seconds
                / result.timing("ppm_predictabilities").seconds
            ),
            "ilp": (
                result.timing("ilp_ipc_reference").seconds
                / result.timing("ilp_ipc").seconds
            ),
        }
        result = MicaBenchResult(
            trace_length=result.trace_length,
            profile=result.profile,
            repeats=result.repeats,
            timings=result.timings,
            speedups=speedups,
        )
    return result


def write_bench_json(
    result: MicaBenchResult, path: "Path | str"
) -> Path:
    """Serialize one harness run to ``BENCH_mica.json``."""
    destination = Path(path)
    destination.write_text(json.dumps(result.as_dict(), indent=2) + "\n")
    return destination
