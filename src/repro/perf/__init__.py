"""Performance subsystem: characterization caching and benchmarking.

The ROADMAP north star is "as fast as the hardware allows".  This
package holds the two pieces that are about *speed* rather than paper
semantics:

* :mod:`repro.perf.cache` — the on-disk cache hierarchy: a
  characterization cache keyed by trace **content** hash plus the
  configuration fingerprint (a benchmark whose trace has not changed is
  never re-analyzed), an HPC cache keyed by the same content hash plus
  the **machine fingerprints + HPC_SIM_VERSION** (a benchmark whose
  trace has not changed is never re-simulated), and below them a trace
  cache keyed by **profile fingerprint + length + seed +
  TRACE_GEN_VERSION** (a benchmark whose profile has not changed is
  never re-generated — the gap a content-addressed cache cannot close,
  since hashing content requires the bytes).
* :mod:`repro.perf.integrity` — the trust layer under every cache
  level: checksum + schema metadata embedded in each ``.npz``, verified
  loads that quarantine (never re-serve) corrupt entries, and atomic
  writes that clean up after themselves.
* :mod:`repro.perf.journal` — the crash-safe write-ahead journal
  (checksummed append-only JSONL, fsync'd appends, torn-tail repair,
  atomic rotation) under resumable dataset builds and the service's
  durable job registry.
* :mod:`repro.perf.faults` — the deterministic fault-injection harness
  (entry corruption modes, IO errors at store/load/rename time, worker
  crashes/errors/timeouts, SIGKILL at journal/writer seams, and the
  seeded chaos scheduler) that the robustness tests drive.
* :mod:`repro.perf.history` — the performance-trajectory layer over
  the harness: one-line JSONL history rows (per-engine speedups) for
  ``BENCH_history.jsonl`` and the floor-gating used by the CI perf
  gate (``benchmarks/perf/bench_gate.py`` + ``floors.json``).
* :mod:`repro.perf.timing` — the MICA benchmark harness: it times every
  analyzer (and the retained scalar reference implementations of PPM
  and ILP) on a standard trace, times the generation engine against its
  scalar references (plus cold/warm dataset builds), times the HPC
  event engines (caches, TLB, predictors, ``simulate_events``) against
  their scalar specifications, and emits the machine-readable
  ``BENCH_mica.json`` that tracks the performance trajectory across
  PRs.

Both are consumed by :func:`repro.experiments.build_dataset` (per-trace
cache under parallel workers) and the CLI (``--jobs``, ``--cache-dir``,
``python -m repro bench``).
"""

from . import faults, history, integrity, journal
from .cache import (
    CacheVerifyReport,
    CharacterizationCache,
    HpcCache,
    SHARD_CACHE_VERSION,
    ShardCache,
    TraceCache,
    cached_characterize,
    cached_collect_hpc,
    cached_generate_trace,
    is_cache_degraded,
    reset_cache_degradation,
    shard_entry_key,
    sweep_temporaries,
    trace_fingerprint,
    verify_cache,
)
from .sharding import (
    cold_state_call_count,
    reset_cold_state_call_count,
    sharded_characterize,
)
from .history import (
    append_bench_history,
    bench_history_row,
    check_bench_floors,
    load_bench_history,
)
from .integrity import QuarantineEvent
from .journal import (
    JournalReplay,
    JournalTruncation,
    WriteAheadJournal,
    replay_journal,
    rotate_journal,
)
from .timing import (
    AnalyzerTiming,
    GenerationBenchResult,
    HpcBenchResult,
    MicaBenchResult,
    PhasesBenchResult,
    ShardedBenchResult,
    run_generation_bench,
    run_hpc_bench,
    run_mica_bench,
    run_phases_bench,
    run_sharded_bench,
    write_bench_json,
)

__all__ = [
    "CacheVerifyReport",
    "CharacterizationCache",
    "HpcCache",
    "QuarantineEvent",
    "SHARD_CACHE_VERSION",
    "ShardCache",
    "TraceCache",
    "cached_characterize",
    "cold_state_call_count",
    "reset_cold_state_call_count",
    "shard_entry_key",
    "sharded_characterize",
    "cached_collect_hpc",
    "cached_generate_trace",
    "faults",
    "history",
    "append_bench_history",
    "bench_history_row",
    "check_bench_floors",
    "load_bench_history",
    "integrity",
    "is_cache_degraded",
    "journal",
    "JournalReplay",
    "JournalTruncation",
    "WriteAheadJournal",
    "replay_journal",
    "rotate_journal",
    "reset_cache_degradation",
    "sweep_temporaries",
    "trace_fingerprint",
    "verify_cache",
    "AnalyzerTiming",
    "GenerationBenchResult",
    "HpcBenchResult",
    "MicaBenchResult",
    "PhasesBenchResult",
    "ShardedBenchResult",
    "run_generation_bench",
    "run_hpc_bench",
    "run_mica_bench",
    "run_phases_bench",
    "run_sharded_bench",
    "write_bench_json",
]
