"""Performance subsystem: characterization caching and benchmarking.

The ROADMAP north star is "as fast as the hardware allows".  This
package holds the two pieces that are about *speed* rather than paper
semantics:

* :mod:`repro.perf.cache` — an on-disk characterization cache keyed by
  trace **content** hash plus the configuration fingerprint, so a
  benchmark whose trace has not changed is never re-analyzed, across
  processes and across runs.
* :mod:`repro.perf.timing` — the MICA benchmark harness: it times every
  analyzer (and the retained scalar reference implementations of PPM
  and ILP) on a standard trace and emits the machine-readable
  ``BENCH_mica.json`` that tracks the performance trajectory across
  PRs.

Both are consumed by :func:`repro.experiments.build_dataset` (per-trace
cache under parallel workers) and the CLI (``--jobs``, ``--cache-dir``,
``python -m repro bench``).
"""

from .cache import (
    CharacterizationCache,
    cached_characterize,
    trace_fingerprint,
)
from .timing import (
    AnalyzerTiming,
    MicaBenchResult,
    run_mica_bench,
    write_bench_json,
)

__all__ = [
    "CharacterizationCache",
    "cached_characterize",
    "trace_fingerprint",
    "AnalyzerTiming",
    "MicaBenchResult",
    "run_mica_bench",
    "write_bench_json",
]
