"""Deterministic fault injection for the cache hierarchy and builds.

The robustness tier-1 tests (and, later, the service layer's chaos
checks) need *reproducible* failure: the same seed, the same fault, the
same outcome, every run.  Three injector families live here:

* **Entry corruption** — :func:`corrupt_entry` damages one cache
  ``.npz`` in a chosen mode (:data:`CORRUPTION_MODES`), seeded, so a
  test can assert that every mode reads back as a verified miss and
  quarantines the file:

  - ``truncate``   — drop the second half of the file's bytes.
  - ``bitflip``    — flip one seeded bit inside a payload array while
    keeping the original metadata (exercises the payload checksum, not
    the zip CRC).
  - ``wrong_shape``— rewrite one payload array with a different shape
    and *freshly consistent* metadata (only expected-shape validation
    can catch it).
  - ``wrong_version`` — re-stamp valid payloads with a stale semantic
    version.
  - ``foreign``    — re-stamp valid payloads as belonging to another
    cache level.

* **IO errors** — :func:`inject_io_faults` patches the
  :mod:`repro.perf.integrity` IO seams so the i-th store/load/rename
  call inside the context raises a chosen ``OSError`` (ENOSPC by
  default).  Call indices are explicit, hence deterministic.

* **Process kills** — :func:`inject_kill_faults` arms
  :func:`maybe_kill`, which is called at every journal and atomic-writer
  seam (before the write, between write and fsync/replace, after).  An
  armed kill SIGKILLs the *calling process* — the orchestrator or a
  pool worker, whichever reaches the seam — which is how the chaos
  tests prove torn-tail repair and resume convergence under real,
  uncatchable process death.  Hits are counted through the same
  ``O_CREAT | O_EXCL`` token files, so a seam that already fired does
  not fire again after the resumed process replays past it.

* **Chaos schedule** — :func:`chaos_schedule` expands one seed into a
  deterministic interleaving of every fault family above, for soak
  tests that run repeated build→kill→resume cycles.

* **Worker faults** — :func:`inject_worker_faults` arms
  :func:`maybe_fail_worker` (called by every dataset worker) through an
  environment variable, so faults cross the ``ProcessPoolExecutor``
  boundary.  A fault names its benchmark, a mode (``crash`` kills the
  worker process, ``error`` raises, ``timeout`` sleeps then raises
  ``TimeoutError``) and how many times to fire; firing is claimed
  through ``O_CREAT | O_EXCL`` token files in a state directory, so
  "fail the first N attempts, then succeed" holds across processes and
  retries.

Nothing here runs unless explicitly armed: ``maybe_fail_worker`` is a
no-op without the environment variable, and the IO seams are only
patched inside the context manager.
"""

from __future__ import annotations

import errno as errno_module
import hashlib
import itertools
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from . import integrity

#: Supported :func:`corrupt_entry` modes.
CORRUPTION_MODES = (
    "truncate", "bitflip", "wrong_shape", "wrong_version", "foreign",
)

#: Environment variable carrying the armed worker-fault plan.
WORKER_FAULTS_ENV = "REPRO_WORKER_FAULTS"

#: Environment variable carrying the armed service-fault plan.
SERVICE_FAULTS_ENV = "REPRO_SERVICE_FAULTS"

#: Environment variable carrying the armed process-kill plan.
KILL_FAULTS_ENV = "REPRO_KILL_FAULTS"

#: Every seam :func:`maybe_kill` is called from.  ``journal-*`` seams
#: bracket the write-ahead journal's append/rotate IO
#: (:mod:`repro.perf.journal`); ``writer-*`` seams bracket the atomic
#: cache writer (:func:`repro.perf.integrity.write_entry`).
KILL_SEAMS = (
    "journal-append-before",
    "journal-append-unsynced",
    "journal-append-after",
    "journal-rotate-before-replace",
    "journal-rotate-after-replace",
    "writer-before-store",
    "writer-before-replace",
    "writer-after-replace",
)


class InjectedWorkerError(RuntimeError):
    """The failure raised by an armed ``error``-mode worker fault."""


# ---------------------------------------------------------------------------
# Entry corruption
# ---------------------------------------------------------------------------


def _read_raw(path: Path) -> "Tuple[Dict[str, np.ndarray], dict]":
    with np.load(path, allow_pickle=False) as archive:
        arrays = {
            name: archive[name]
            for name in archive.files
            if name != integrity.METADATA_FIELD
        }
        metadata = json.loads(str(archive[integrity.METADATA_FIELD][()]))
    return arrays, metadata


def _write_raw(
    path: Path, arrays: "Dict[str, np.ndarray]", metadata: dict
) -> None:
    payload = dict(arrays)
    payload[integrity.METADATA_FIELD] = np.array(json.dumps(metadata))
    np.savez(path, **payload)


def corrupt_entry(path: "Path | str", mode: str, seed: int = 0) -> Path:
    """Damage one cache entry in place, deterministically.

    Args:
        path: an existing integrity-stamped ``.npz`` entry.
        mode: one of :data:`CORRUPTION_MODES`.
        seed: drives every random choice (field, bit position), so the
            corrupted bytes are identical across runs.

    Returns:
        The (same) path, now holding the corrupted entry.
    """
    path = Path(path)
    if mode not in CORRUPTION_MODES:
        raise ValueError(
            f"unknown corruption mode {mode!r}; pick one of "
            f"{CORRUPTION_MODES}"
        )
    rng = np.random.default_rng(seed)
    if mode == "truncate":
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])
        return path

    arrays, metadata = _read_raw(path)
    field = sorted(arrays)[int(rng.integers(len(arrays)))]
    if mode == "bitflip":
        source = np.ascontiguousarray(arrays[field])
        buffer = bytearray(source.tobytes())
        position = int(rng.integers(len(buffer)))
        buffer[position] ^= 1 << int(rng.integers(8))
        arrays[field] = np.frombuffer(
            bytes(buffer), dtype=source.dtype
        ).reshape(source.shape)
        # Keep the original metadata: the recorded checksum no longer
        # matches the flipped payload, which is exactly the detection
        # path under test.
        _write_raw(path, arrays, metadata)
        return path

    if mode == "wrong_shape":
        flat = np.ascontiguousarray(arrays[field]).reshape(-1)
        arrays[field] = np.concatenate([flat, flat[:1]])
    level = metadata["level"]
    version = metadata["version"]
    if mode == "wrong_version":
        version = str(int(metadata["version"]) + 1)
    elif mode == "foreign":
        level = "foreign"
    # Re-stamp with freshly consistent metadata so the self-checksums
    # pass and only the targeted check (shape expectation, version,
    # level) can reject the entry.
    _write_raw(
        path, arrays, integrity.build_metadata(level, version, arrays)
    )
    return path


# ---------------------------------------------------------------------------
# IO errors at store/load/rename time
# ---------------------------------------------------------------------------

_IO_SEAMS = {"store": "_savez", "load": "_open_archive", "rename": "_replace"}


@contextmanager
def inject_io_faults(
    op: str,
    indices: "Iterable[int]" = (0,),
    errno: int = errno_module.ENOSPC,
    partial_write: bool = False,
):
    """Raise ``OSError(errno)`` on chosen calls to one IO operation.

    Args:
        op: ``"store"`` (the npz writer), ``"load"`` (archive open) or
            ``"rename"`` (the atomic replace).
        indices: 0-based call indices, counted within this context,
            that fail.  Everything else passes through.
        errno: the error to raise (default ENOSPC — disk full).
        partial_write: for ``store`` faults, first leave a partial
            temporary file behind (as a writer dying mid-write would),
            then raise.
    """
    if op not in _IO_SEAMS:
        raise ValueError(f"unknown io op {op!r}; pick one of "
                         f"{tuple(_IO_SEAMS)}")
    attribute = _IO_SEAMS[op]
    original = getattr(integrity, attribute)
    counter = itertools.count()
    failing = frozenset(indices)

    def seam(*args, **kwargs):
        if next(counter) in failing:
            if partial_write and op == "store":
                Path(args[0]).write_bytes(b"partial write")
            raise OSError(
                errno, f"{os.strerror(errno)} [injected {op} fault]"
            )
        return original(*args, **kwargs)

    setattr(integrity, attribute, seam)
    try:
        yield
    finally:
        setattr(integrity, attribute, original)


# ---------------------------------------------------------------------------
# Worker crashes / errors / timeouts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerFault:
    """One armed fault for a dataset worker.

    Attributes:
        benchmark: the full benchmark name the fault targets.
        mode: ``"crash"`` (``os._exit`` — kills the pool process),
            ``"error"`` (raises :class:`InjectedWorkerError`) or
            ``"timeout"`` (sleeps briefly, then raises
            ``TimeoutError``).
        times: how many triggers before the benchmark succeeds.
    """

    benchmark: str
    mode: str = "error"
    times: int = 1


@contextmanager
def inject_worker_faults(
    faults: "Sequence[WorkerFault]", state_dir: "Path | str"
):
    """Arm worker faults for every dataset worker started inside.

    The plan travels via :data:`WORKER_FAULTS_ENV`, so it reaches
    ``ProcessPoolExecutor`` children (which inherit the environment at
    pool creation).  ``state_dir`` holds the cross-process trigger
    tokens; use a fresh directory per experiment so counts start at
    zero.
    """
    state = Path(state_dir)
    state.mkdir(parents=True, exist_ok=True)
    plan = json.dumps({
        "state_dir": str(state),
        "faults": [
            {"benchmark": fault.benchmark, "mode": fault.mode,
             "times": fault.times}
            for fault in faults
        ],
    })
    previous = os.environ.get(WORKER_FAULTS_ENV)
    os.environ[WORKER_FAULTS_ENV] = plan
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(WORKER_FAULTS_ENV, None)
        else:
            os.environ[WORKER_FAULTS_ENV] = previous


def _claim_trigger(
    state_dir: str, benchmark: str, times: int, namespace: str = "worker"
) -> bool:
    """Atomically claim one of the fault's remaining triggers."""
    token_base = hashlib.sha256(benchmark.encode()).hexdigest()[:16]
    for index in range(times):
        token = Path(state_dir) / (
            f"{namespace}-fault-{token_base}-{index}"
        )
        try:
            handle = os.open(
                token, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            continue
        os.close(handle)
        return True
    return False


# ---------------------------------------------------------------------------
# Service-seam faults (queue saturation, crash mid-request, slow handler)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceFault:
    """One armed fault for a characterization-service job.

    Attributes:
        benchmark: full benchmark name the fault targets (``"*"``
            matches every job — useful for saturating the queue).
        mode: ``"slow"`` (sleeps ``seconds`` inside the handler — the
            lever for queue-saturation and past-deadline experiments),
            ``"error"`` (raises :class:`InjectedWorkerError`) or
            ``"crash"`` (raises ``BrokenProcessPool``, the signature a
            dead worker process leaves behind — exercises the service's
            retry and circuit-breaker paths).
        times: how many triggers before the job succeeds.
        seconds: the ``slow`` mode's sleep.
    """

    benchmark: str
    mode: str = "error"
    times: int = 1
    seconds: float = 0.25


@contextmanager
def inject_service_faults(
    faults: "Sequence[ServiceFault]", state_dir: "Path | str"
):
    """Arm service-job faults inside the context.

    Mirrors :func:`inject_worker_faults` at the service seam: the plan
    travels through :data:`SERVICE_FAULTS_ENV` and triggers are claimed
    through ``O_CREAT | O_EXCL`` tokens in ``state_dir`` (namespaced
    apart from worker-fault tokens), so "fail the first N attempts,
    then succeed" holds across the service's retry rounds.
    """
    state = Path(state_dir)
    state.mkdir(parents=True, exist_ok=True)
    plan = json.dumps({
        "state_dir": str(state),
        "faults": [
            {"benchmark": fault.benchmark, "mode": fault.mode,
             "times": fault.times, "seconds": fault.seconds}
            for fault in faults
        ],
    })
    previous = os.environ.get(SERVICE_FAULTS_ENV)
    os.environ[SERVICE_FAULTS_ENV] = plan
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(SERVICE_FAULTS_ENV, None)
        else:
            os.environ[SERVICE_FAULTS_ENV] = previous


def maybe_fail_service_job(benchmark: str) -> None:
    """Fire an armed service fault for this job, if triggers remain.

    Called by every service compute attempt; a no-op unless
    :func:`inject_service_faults` is active.
    """
    raw = os.environ.get(SERVICE_FAULTS_ENV)
    if not raw:
        return
    plan = json.loads(raw)
    for fault in plan["faults"]:
        if fault["benchmark"] not in ("*", benchmark):
            continue
        token_name = (
            benchmark if fault["benchmark"] != "*" else f"*:{benchmark}"
        )
        if not _claim_trigger(
            plan["state_dir"], token_name, int(fault["times"]),
            namespace="service",
        ):
            continue
        mode = fault["mode"]
        if mode == "slow":
            time.sleep(float(fault.get("seconds", 0.25)))
            return
        if mode == "crash":
            from concurrent.futures.process import BrokenProcessPool

            raise BrokenProcessPool(
                f"injected service worker crash for {benchmark}"
            )
        raise InjectedWorkerError(
            f"injected service failure for {benchmark}"
        )


def maybe_fail_worker(benchmark: str) -> None:
    """Fire an armed fault for this benchmark, if any triggers remain.

    Called by every dataset worker at the start of a job; a no-op
    unless :func:`inject_worker_faults` is active.
    """
    raw = os.environ.get(WORKER_FAULTS_ENV)
    if not raw:
        return
    plan = json.loads(raw)
    for fault in plan["faults"]:
        if fault["benchmark"] != benchmark:
            continue
        if not _claim_trigger(
            plan["state_dir"], benchmark, int(fault["times"])
        ):
            continue
        mode = fault["mode"]
        if mode == "crash":
            os._exit(17)
        if mode == "timeout":
            time.sleep(0.05)
            raise TimeoutError(
                f"injected worker timeout for {benchmark}"
            )
        raise InjectedWorkerError(
            f"injected worker failure for {benchmark}"
        )


# ---------------------------------------------------------------------------
# Process kills (SIGKILL at journal/writer seams)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KillFault:
    """One armed SIGKILL at a journal or writer seam.

    Attributes:
        seam: the :data:`KILL_SEAMS` name the kill fires at.
        after: how many hits of the seam to let pass first (0 kills on
            the very first hit).  Hits are counted across *all*
            processes and across resume cycles, so the same armed plan
            kills once and then lets the resumed run sail past.
        times: how many consecutive hits (starting at ``after``) die.
    """

    seam: str
    after: int = 0
    times: int = 1


@contextmanager
def inject_kill_faults(
    faults: "Sequence[KillFault]", state_dir: "Path | str"
):
    """Arm process kills for every seam hit inside the context.

    The plan travels via :data:`KILL_FAULTS_ENV` (reaching pool workers
    the way worker faults do); hit counting lives in ``O_CREAT |
    O_EXCL`` token files under ``state_dir``, so it is global across
    the orchestrator, its workers, and any process resumed after a
    kill.  Use a fresh ``state_dir`` per experiment so counts start at
    zero.

    A fired kill is ``SIGKILL`` — uncatchable, no ``atexit``, no
    ``finally`` — which is the point: the surviving on-disk state is
    exactly what the durability machinery must recover from.
    """
    state = Path(state_dir)
    state.mkdir(parents=True, exist_ok=True)
    for fault in faults:
        if fault.seam not in KILL_SEAMS:
            raise ValueError(
                f"unknown kill seam {fault.seam!r}; pick one of "
                f"{KILL_SEAMS}"
            )
    plan = json.dumps({
        "state_dir": str(state),
        "faults": [
            {"seam": fault.seam, "after": fault.after,
             "times": fault.times}
            for fault in faults
        ],
    })
    previous = os.environ.get(KILL_FAULTS_ENV)
    os.environ[KILL_FAULTS_ENV] = plan
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(KILL_FAULTS_ENV, None)
        else:
            os.environ[KILL_FAULTS_ENV] = previous


def _claim_hit_index(state_dir: str, seam: str) -> int:
    """Atomically claim this process's hit number for a seam.

    Token files enumerate hits from 0; the first ``O_EXCL`` create that
    succeeds is this call's global hit index.  Linear probing is O(hits
    so far), which is negligible at test scale and keeps the counter
    crash-safe with no shared state beyond the filesystem.
    """
    token_base = hashlib.sha256(seam.encode()).hexdigest()[:16]
    index = 0
    while True:
        token = Path(state_dir) / f"kill-{token_base}-hit-{index}"
        try:
            handle = os.open(
                token, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            index += 1
            continue
        os.close(handle)
        return index


def maybe_kill(seam: str) -> None:
    """SIGKILL the calling process if a kill fault is armed for ``seam``.

    Called by the journal and the atomic cache writer at every seam a
    crash could land; a no-op (without touching the filesystem) unless
    :func:`inject_kill_faults` is active and the plan names the seam.
    """
    raw = os.environ.get(KILL_FAULTS_ENV)
    if not raw:
        return
    plan = json.loads(raw)
    matching = [
        fault for fault in plan["faults"] if fault["seam"] == seam
    ]
    if not matching:
        return
    hit = _claim_hit_index(plan["state_dir"], seam)
    for fault in matching:
        after = int(fault.get("after", 0))
        times = int(fault.get("times", 1))
        if after <= hit < after + times:
            os.kill(os.getpid(), 9)
            time.sleep(30)  # pragma: no cover - SIGKILL is not instant


# ---------------------------------------------------------------------------
# Chaos schedule (seeded interleaving of every fault family)
# ---------------------------------------------------------------------------


def chaos_schedule(seed: int, rounds: int) -> "Tuple[dict, ...]":
    """Expand one seed into a deterministic chaos plan.

    Each round is a dict describing one disturbance to apply to a
    build→kill→resume (or serve→kill→restart) cycle:

    - ``{"kind": "kill", "seam": s, "after": n}`` — arm
      :func:`inject_kill_faults` at seam ``s`` after ``n`` hits.
    - ``{"kind": "corrupt", "mode": m, "seed": k}`` — damage one cache
      entry with :func:`corrupt_entry`.
    - ``{"kind": "worker", "mode": m}`` — arm one worker fault
      (``crash``/``error``/``timeout``) on a scheduled benchmark.
    - ``{"kind": "io", "op": o, "index": i}`` — one injected IO error.
    - ``{"kind": "service", "mode": m}`` — arm one service-job fault.
    - ``{"kind": "none"}`` — a clean control round.

    The same ``(seed, rounds)`` always yields the same plan, so a soak
    failure reproduces from its logged seed alone.
    """
    rng = np.random.default_rng(seed)
    kinds = ("kill", "corrupt", "worker", "io", "service", "none")
    worker_modes = ("crash", "error", "timeout")
    service_modes = ("slow", "error", "crash")
    io_ops = ("store", "load", "rename")
    plan = []
    for _ in range(max(0, int(rounds))):
        kind = kinds[int(rng.integers(len(kinds)))]
        if kind == "kill":
            plan.append({
                "kind": "kill",
                "seam": KILL_SEAMS[int(rng.integers(len(KILL_SEAMS)))],
                "after": int(rng.integers(3)),
            })
        elif kind == "corrupt":
            plan.append({
                "kind": "corrupt",
                "mode": CORRUPTION_MODES[
                    int(rng.integers(len(CORRUPTION_MODES)))
                ],
                "seed": int(rng.integers(2**31)),
            })
        elif kind == "worker":
            plan.append({
                "kind": "worker",
                "mode": worker_modes[
                    int(rng.integers(len(worker_modes)))
                ],
            })
        elif kind == "io":
            plan.append({
                "kind": "io",
                "op": io_ops[int(rng.integers(len(io_ops)))],
                "index": int(rng.integers(3)),
            })
        elif kind == "service":
            plan.append({
                "kind": "service",
                "mode": service_modes[
                    int(rng.integers(len(service_modes)))
                ],
            })
        else:
            plan.append({"kind": "none"})
    return tuple(plan)
