"""Integrity-checked ``.npz`` entries: the trust layer under every cache.

Every entry the cache hierarchy writes (characterization, HPC, trace
and dataset level) embeds one extra field, :data:`METADATA_FIELD`, a
JSON document recording

* the **level** the entry belongs to (``char``/``hpc``/``trace``/
  ``dataset``) — a foreign file copied to the right name is detected,
* the level's **semantic version** — a stale entry carried across a
  version bump is detected even when the filename says otherwise,
* per payload field the expected **shape**, **dtype** and a
  **sha256 checksum** over the raw bytes — truncation, bit-flips and
  swapped payloads are detected.

Loads go through :func:`load_entry`, which verifies all of the above
(plus caller-side *expected* shape/dtype constraints) and turns any
violation into a **verified miss**: the bad file is quarantined —
renamed to ``<name>.quarantined`` so it can never be re-served — and
``None`` is returned.  Only OS-level read errors (EIO and friends) are
treated as transient misses that leave the file in place.  Corruption
therefore never crashes a build and is never silently served.

Writes go through :func:`write_entry`, which stays atomic (temp file +
``os.replace``) and removes its temporary file when the writer dies
mid-write (disk full), so failed stores leave no ``tmp-*.npz`` litter.

The module-level IO seams (:func:`_savez`, :func:`_open_archive`,
:func:`_replace`) exist so :mod:`repro.perf.faults` can inject
deterministic IO errors at store/load/rename time without touching the
production control flow.
"""

from __future__ import annotations

import json
import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import CacheIntegrityError

#: Name of the embedded metadata field inside every cache ``.npz``.
METADATA_FIELD = "__integrity__"

#: Version of the metadata document layout itself.
METADATA_FORMAT = "repro-cache/1"

#: Suffix appended to quarantined entries (keeps them out of every
#: ``*.npz`` glob, so a quarantined file is never re-served).
QUARANTINE_SUFFIX = ".quarantined"

#: ``{field: (expected_shape | None, expected_dtype | None)}``
ExpectedFields = Mapping[str, Tuple[Optional[tuple], Optional[object]]]


@dataclass(frozen=True)
class QuarantineEvent:
    """One bad cache entry moved aside.

    Attributes:
        path: the entry path that failed verification.
        quarantined_to: where it was renamed (None when the rename
            itself failed, e.g. on a read-only directory — the entry
            still reads as a miss on every future load).
        reason: the human-readable integrity violation.
    """

    path: str
    quarantined_to: Optional[str]
    reason: str


_QUARANTINE_LOG: List[QuarantineEvent] = []


def drain_quarantine_log() -> Tuple[QuarantineEvent, ...]:
    """Return and clear the quarantine events recorded by this process.

    Dataset workers drain this around each benchmark job so build
    reports can attribute quarantines to the benchmark that hit them.
    """
    events = tuple(_QUARANTINE_LOG)
    _QUARANTINE_LOG.clear()
    return events


# ---------------------------------------------------------------------------
# IO seams (patched by repro.perf.faults to inject IO errors)
# ---------------------------------------------------------------------------


def _savez(path: "Path | str", fields: Dict[str, np.ndarray],
           compress: bool) -> None:
    writer = np.savez_compressed if compress else np.savez
    writer(path, **fields)


def _open_archive(path: "Path | str"):
    return np.load(path, allow_pickle=False)


def _replace(source: "Path | str", destination: "Path | str") -> None:
    os.replace(source, destination)


# ---------------------------------------------------------------------------
# Metadata
# ---------------------------------------------------------------------------


def _array_digest(array: np.ndarray) -> str:
    data = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(data.dtype).encode())
    digest.update(repr(tuple(data.shape)).encode())
    digest.update(data.tobytes())
    return digest.hexdigest()


def build_metadata(
    level: str, version: object, fields: Mapping[str, np.ndarray]
) -> dict:
    """The metadata document embedded in one entry."""
    return {
        "format": METADATA_FORMAT,
        "level": level,
        "version": str(version),
        "fields": {
            name: {
                "shape": list(np.asarray(array).shape),
                "dtype": str(np.asarray(array).dtype),
                "sha256": _array_digest(np.asarray(array)),
            }
            for name, array in fields.items()
        },
    }


# ---------------------------------------------------------------------------
# Write path
# ---------------------------------------------------------------------------


def write_entry(
    path: Path,
    *,
    level: str,
    version: object,
    fields: Mapping[str, np.ndarray],
    compress: bool = False,
) -> Path:
    """Atomically write one integrity-stamped entry.

    The payload plus its metadata go to a ``tmp-*.npz`` sibling first
    and are renamed into place, so concurrent writers of the same key
    cannot tear each other and readers only ever see complete files.
    A writer that dies mid-write (ENOSPC, kill) leaves no temporary
    behind — it is unlinked before the error propagates.

    Raises:
        OSError: when the directory is unwritable or the disk is full
            (callers degrade to compute-without-cache).
    """
    arrays = {name: np.asarray(array) for name, array in fields.items()}
    payload: Dict[str, np.ndarray] = dict(arrays)
    payload[METADATA_FIELD] = np.array(
        json.dumps(build_metadata(level, version, arrays))
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    # The tmp- prefix keeps half-written files out of the entry glob;
    # the .npz suffix stops np.savez renaming the file.
    temporary = path.with_name(f"tmp-{path.stem}.{os.getpid()}.npz")
    # Imported lazily: faults imports this module at its top level, and
    # the kill seams must be a no-op import when nothing is armed.
    from . import faults

    try:
        faults.maybe_kill("writer-before-store")
        _savez(temporary, payload, compress)
        faults.maybe_kill("writer-before-replace")
        _replace(temporary, path)
        faults.maybe_kill("writer-after-replace")
    except Exception:
        try:
            temporary.unlink()
        except OSError:
            pass
        raise
    return path


# ---------------------------------------------------------------------------
# Read path
# ---------------------------------------------------------------------------


def _check_expected(
    name: str, array: np.ndarray, expected: ExpectedFields
) -> None:
    if name not in expected:
        return
    expected_shape, expected_dtype = expected[name]
    if expected_shape is not None and tuple(array.shape) != tuple(
        expected_shape
    ):
        raise CacheIntegrityError(
            f"field {name!r} has shape {tuple(array.shape)}, "
            f"expected {tuple(expected_shape)}"
        )
    if expected_dtype is not None and array.dtype != np.dtype(expected_dtype):
        raise CacheIntegrityError(
            f"field {name!r} has dtype {array.dtype}, "
            f"expected {np.dtype(expected_dtype)}"
        )


def verify_entry(
    path: Path,
    *,
    level: str,
    version: object,
    expected: "ExpectedFields | None" = None,
) -> Dict[str, np.ndarray]:
    """Read one entry, verifying metadata and payload checksums.

    Returns:
        The payload arrays (metadata field excluded), fully
        materialized — the archive handle is closed before returning.

    Raises:
        CacheIntegrityError: on any violation — unreadable/truncated
            bytes, missing or malformed metadata, foreign level, stale
            version, shape/dtype mismatch (recorded or expected) or a
            checksum mismatch.
        OSError: on OS-level read failures (transient; the entry is
            not condemned).
    """
    try:
        with _open_archive(path) as archive:
            names = set(archive.files)
            if METADATA_FIELD not in names:
                raise CacheIntegrityError("missing integrity metadata")
            try:
                metadata = json.loads(str(archive[METADATA_FIELD][()]))
                recorded = metadata["fields"]
            except (json.JSONDecodeError, KeyError, TypeError) as error:
                raise CacheIntegrityError(
                    f"malformed integrity metadata: {error}"
                )
            if metadata.get("level") != level:
                raise CacheIntegrityError(
                    f"foreign entry: level {metadata.get('level')!r}, "
                    f"expected {level!r}"
                )
            if metadata.get("version") != str(version):
                raise CacheIntegrityError(
                    f"stale entry: version {metadata.get('version')!r}, "
                    f"expected {version!r}"
                )
            if set(recorded) != names - {METADATA_FIELD}:
                raise CacheIntegrityError(
                    "payload fields do not match the recorded schema"
                )
            arrays: Dict[str, np.ndarray] = {}
            for name, spec in recorded.items():
                array = archive[name]
                if list(array.shape) != list(spec.get("shape", [])):
                    raise CacheIntegrityError(
                        f"field {name!r} has shape {tuple(array.shape)}, "
                        f"metadata recorded {tuple(spec.get('shape', []))}"
                    )
                if str(array.dtype) != spec.get("dtype"):
                    raise CacheIntegrityError(
                        f"field {name!r} has dtype {array.dtype}, "
                        f"metadata recorded {spec.get('dtype')!r}"
                    )
                if _array_digest(array) != spec.get("sha256"):
                    raise CacheIntegrityError(
                        f"field {name!r} failed its payload checksum"
                    )
                _check_expected(name, array, expected or {})
                arrays[name] = array
            return arrays
    except (CacheIntegrityError, OSError):
        raise
    except Exception as error:
        # np.load raises ValueError on non-npz bytes, zipfile.BadZipFile
        # on truncated/corrupted archives, KeyError on missing members …
        # every one of them means the bytes cannot be trusted.
        raise CacheIntegrityError(f"unreadable archive: {error}")


def quarantine_entry(path: Path) -> "Optional[Path]":
    """Move a condemned entry aside so it can never be re-served.

    Returns the quarantine path, or None when the rename failed (file
    already gone — a concurrent worker won the race — or the directory
    is unwritable; either way the entry stays a verified miss).
    """
    target = path.with_name(path.name + QUARANTINE_SUFFIX)
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target


def load_entry(
    path: Path,
    *,
    level: str,
    version: object,
    expected: "ExpectedFields | None" = None,
) -> "Optional[Dict[str, np.ndarray]]":
    """Verified load: the payload arrays, or None on a (verified) miss.

    A missing file is a plain miss.  A file that fails verification is
    a *verified miss*: it is quarantined, the event is recorded on the
    process-local quarantine log, and None is returned.  An OS-level
    read error is a transient miss (file left alone).  This function
    never raises.
    """
    if not path.is_file():
        return None
    try:
        return verify_entry(
            path, level=level, version=version, expected=expected
        )
    except CacheIntegrityError as error:
        quarantined = quarantine_entry(path)
        _QUARANTINE_LOG.append(
            QuarantineEvent(
                path=str(path),
                quarantined_to=(
                    str(quarantined) if quarantined is not None else None
                ),
                reason=str(error),
            )
        )
        return None
    except OSError:
        return None
