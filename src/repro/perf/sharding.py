"""Shard scheduler: stream or fan one trace's shards across workers.

This is the driver layer over the shard-mergeable engine
(:mod:`repro.mica.shard`).  :func:`sharded_characterize` splits one
trace into contiguous shards and characterizes it either

* **sequentially** (``jobs <= 1``): a streaming fold that keeps one
  shard's rows resident at a time — the out-of-core path for traces
  much larger than RAM (pair with a
  :class:`~repro.trace.MappedTraceSource`); or
* **in parallel** (``jobs > 1``): a two-round fan-out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` — the intra-trace
  parallelism axis alongside the per-benchmark axis of
  :func:`repro.experiments.build_dataset`.

The two-round structure mirrors the engine's split between cold and
carry-dependent state: round 1 computes every shard's *cold* mergeable
state independently (embarrassingly parallel, shard-cacheable); the
parent then runs the cheap sequential prefix merge, which yields each
shard's rooted incoming PPM carry; round 2 runs the carry-dependent
PPM prediction pass per shard in parallel.  Everything else about the
result comes from :func:`~repro.mica.shard.finalize_state`, so the
output is bit-for-bit identical to one-shot
:func:`repro.mica.characterize` for every shard geometry and worker
count.

Cold states go through the per-shard cache level
(:class:`~repro.perf.cache.ShardCache`) when a cache directory is
given: entries key by shard content hash x absolute offset x
characterization fingerprint, so re-characterizing an extended trace
reuses every warm shard whose byte range lines up.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG, ReproConfig
from ..errors import CharacterizationError
from ..mica import CharacteristicVector
from ..mica.shard import (
    SECTION_ORDER,
    ShardState,
    finalize_state,
    merge_states,
    ppm_empty_state,
    ppm_shard_correct,
    resolve_wanted,
    shard_state,
    state_from_arrays,
    state_to_arrays,
    wanted_sections,
)
from ..trace import (
    MappedTraceSource,
    Trace,
    TraceSource,
    as_trace_source,
    shard_bounds,
)
from . import integrity
from .cache import ShardCache, _degrade, shard_entry_key, trace_fingerprint

# -- instrumentation seam ---------------------------------------------------
#
# Counts cold shard-state computations in this process, so tests can
# assert that a warm shard cache skips the engine entirely (mirroring
# repro.uarch.hpc_call_count for the HPC cache).

_COLD_STATE_CALLS = 0


def cold_state_call_count() -> int:
    """Cold shard-state computations performed by this process."""
    return _COLD_STATE_CALLS


def reset_cold_state_call_count() -> None:
    """Zero the counter (for tests)."""
    global _COLD_STATE_CALLS
    _COLD_STATE_CALLS = 0


def _sections_mask(sections: "Sequence[str]") -> int:
    return sum(
        1 << position
        for position, name in enumerate(SECTION_ORDER)
        if name in sections
    )


def _characterization_kwargs(config: ReproConfig) -> dict:
    # The same picklable subset the dataset workers ship (the two
    # non-characterization fields are harmless constructor defaults).
    return {
        "trace_length": config.trace_length,
        "seed": config.seed,
        "block_bytes": config.block_bytes,
        "page_bytes": config.page_bytes,
        "ilp_window_sizes": tuple(config.ilp_window_sizes),
        "reg_dep_thresholds": tuple(config.reg_dep_thresholds),
        "stride_thresholds": tuple(config.stride_thresholds),
        "ppm_max_order": config.ppm_max_order,
    }


def _cold_state(
    chunk: Trace,
    start: int,
    config: ReproConfig,
    wanted: np.ndarray,
    cache_dir,
) -> ShardState:
    """One shard's cold state, through the shard cache when enabled."""
    global _COLD_STATE_CALLS
    cache = key = None
    if cache_dir is not None:
        cache = ShardCache(cache_dir)
        key = shard_entry_key(
            trace_fingerprint(chunk), start, config,
            _sections_mask(wanted_sections(wanted)),
        )
        arrays = cache.load(key)
        if arrays is not None:
            return state_from_arrays(arrays)
    _COLD_STATE_CALLS += 1
    state = shard_state(chunk, start, config, wanted)
    if cache is not None:
        try:
            cache.store(key, state_to_arrays(state))
        except OSError as error:
            _degrade(cache.directory, error)
    return state


# -- worker-side shard transport --------------------------------------------
#
# A shard *spec* is a small picklable description of how a worker
# process re-materializes its chunk: mapped sources ship (path, start,
# end) so only the worker touches the rows; in-memory sources ship the
# rows themselves (copy-on-write under fork, one pickled slice under
# spawn — still bounded by shard size per in-flight task).


def _shard_spec(source: TraceSource, start: int, end: int):
    if isinstance(source, MappedTraceSource):
        return ("file", source.path, source.name, start, end)
    return ("mem", source.shard(start, end).data, source.name, start)


def _load_chunk(spec) -> "Tuple[Trace, int]":
    if spec[0] == "mem":
        _, rows, name, start = spec
        return Trace(rows, name=name), start
    _, path, name, start, end = spec
    return MappedTraceSource(path, name=name).shard(start, end), start


def _round1_worker(args):
    """Worker: one shard's cold mergeable state (serialized)."""
    spec, config_kwargs, wanted, cache_dir = args
    integrity.drain_quarantine_log()  # discard events of earlier jobs
    config = ReproConfig(**config_kwargs)
    chunk, start = _load_chunk(spec)
    state = _cold_state(chunk, start, config, wanted, cache_dir)
    return state_to_arrays(state)


def _round2_worker(args):
    """Worker: one shard's PPM correct counts given its rooted carry."""
    spec, max_order, carry = args
    chunk, _ = _load_chunk(spec)
    return ppm_shard_correct(chunk, carry, max_order)


# -- drivers ----------------------------------------------------------------


def _prefix_carries(
    states: "List[ShardState]",
    config: ReproConfig,
    want_ppm: bool,
) -> "Tuple[ShardState, list]":
    """Sequential prefix merge: (full merged state, per-shard carries)."""
    carries = []
    merged: "Optional[ShardState]" = None
    for state in states:
        if want_ppm:
            carries.append(
                merged.ppm if merged is not None
                else ppm_empty_state(config.ppm_max_order)
            )
        merged = (
            state if merged is None
            else merge_states(merged, state, config)
        )
    return merged, carries


def _stream_characterize(
    source: TraceSource,
    bounds: "Sequence[Tuple[int, int]]",
    config: ReproConfig,
    wanted: np.ndarray,
    cache_dir,
) -> np.ndarray:
    """Sequential fold: one shard resident at a time, cache-aware."""
    want_ppm = "branch predictability" in wanted_sections(wanted)
    correct = np.zeros(4, dtype=np.int64)
    prefix: "Optional[ShardState]" = None
    for start, end in bounds:
        chunk = source.shard(start, end)
        if want_ppm:
            carry = (
                prefix.ppm if prefix is not None
                else ppm_empty_state(config.ppm_max_order)
            )
            correct += ppm_shard_correct(chunk, carry, config.ppm_max_order)
        state = _cold_state(chunk, start, config, wanted, cache_dir)
        prefix = (
            state if prefix is None
            else merge_states(prefix, state, config)
        )
    return finalize_state(prefix, correct, config, wanted)


def _parallel_characterize(
    source: TraceSource,
    bounds: "Sequence[Tuple[int, int]]",
    config: ReproConfig,
    wanted: np.ndarray,
    jobs: int,
    cache_dir,
) -> np.ndarray:
    """Two-round fan-out over a process pool; bit-identical reduce."""
    want_ppm = "branch predictability" in wanted_sections(wanted)
    specs = [_shard_spec(source, start, end) for start, end in bounds]
    config_kwargs = _characterization_kwargs(config)
    cache_arg = None if cache_dir is None else str(cache_dir)
    worker_count = min(jobs, len(bounds))
    with ProcessPoolExecutor(max_workers=worker_count) as pool:
        # Round 1: cold states, embarrassingly parallel (map preserves
        # shard order, so the reduce below stays deterministic).
        serialized = list(pool.map(
            _round1_worker,
            [(spec, config_kwargs, wanted, cache_arg) for spec in specs],
        ))
        states = [state_from_arrays(arrays) for arrays in serialized]
        merged, carries = _prefix_carries(states, config, want_ppm)
        # Round 2: carry-dependent PPM predictions, parallel again now
        # that the prefix merge has rooted every shard's incoming state.
        correct = np.zeros(4, dtype=np.int64)
        if want_ppm:
            for partial in pool.map(
                _round2_worker,
                [
                    (spec, config.ppm_max_order, carry)
                    for spec, carry in zip(specs, carries)
                ],
            ):
                correct += partial
    return finalize_state(merged, correct, config, wanted)


def sharded_characterize(
    trace_or_source: "Trace | TraceSource",
    config: ReproConfig = DEFAULT_CONFIG,
    *,
    shards: "Optional[int]" = None,
    shard_size: "Optional[int]" = None,
    jobs: "Optional[int]" = None,
    cache_dir=None,
    categories: "Optional[Sequence[str]]" = None,
    indices: "Optional[Sequence[int]]" = None,
) -> CharacteristicVector:
    """Characterize a trace shard-by-shard; bit-identical to one-shot.

    Args:
        trace_or_source: an in-memory :class:`~repro.trace.Trace` or a
            chunked :class:`~repro.trace.TraceSource` (use
            :func:`~repro.trace.open_trace_source` for traces larger
            than RAM).
        config: reproduction configuration.
        shards: split into this many near-equal contiguous shards.
        shard_size: or split into fixed-size shards of this many rows
            (exactly one of ``shards``/``shard_size`` is required).
        jobs: worker processes for the intra-trace fan-out; ``None`` or
            ``<= 1`` streams sequentially in-process (the out-of-core
            path).
        cache_dir: when given, every shard's cold state goes through
            the content-keyed :class:`~repro.perf.cache.ShardCache`.
        categories: optional Table II category names to compute
            (others come back NaN), as in segmented characterization.
        indices: optional characteristic indices to compute.

    Returns:
        The trace's :class:`~repro.mica.CharacteristicVector` —
        bit-for-bit identical to :func:`repro.mica.characterize` where
        computed, NaN where not requested.

    Raises:
        CharacterizationError: empty trace, unknown category or
            out-of-range index.
        TraceError: invalid shard geometry.
    """
    source = as_trace_source(trace_or_source)
    n = len(source)
    if n == 0:
        raise CharacterizationError("cannot characterize an empty trace")
    bounds = shard_bounds(n, shards=shards, shard_size=shard_size)
    wanted = resolve_wanted(categories, indices)
    if jobs is None or jobs <= 1 or len(bounds) == 1:
        values = _stream_characterize(
            source, bounds, config, wanted, cache_dir
        )
    else:
        values = _parallel_characterize(
            source, bounds, config, wanted, int(jobs), cache_dir
        )
    return CharacteristicVector(name=source.name, values=values)
