"""On-disk caches: characterization results, HPC vectors, traces, shards.

Four cache levels live here, forming a hierarchy under the
dataset-level matrix cache of :mod:`repro.experiments.dataset`:

* **Characterization cache** (top).  Characterizing one trace is pure:
  the 47-dimensional MICA vector depends only on the trace contents and
  the characterization fields of :class:`~repro.config.ReproConfig`.
  Entries key by::

      sha256(trace bytes) + config.characterization_fingerprint() + version

  and store one small ``.npz`` per trace.

* **HPC cache** (beside it).  The seven-metric
  hardware-performance-counter vector is equally pure — a function of
  the trace contents and the two simulated machines — so entries key
  by::

      sha256(trace bytes) + inorder.fingerprint() + ooo.fingerprint()
          + HPC_SIM_VERSION

  and a warm :func:`cached_collect_hpc` performs zero pipeline-model
  runs (asserted via :func:`repro.uarch.hpc_call_count`).

* **Trace cache** (bottom).  Generating a trace is also pure — a
  function of the profile knobs, the length and the per-trace seed —
  but the content-keyed caches cannot skip *generation* (hashing the
  content requires the bytes).  The trace cache closes that gap: it
  keys by::

      profile.fingerprint() + length + seed + TRACE_GEN_VERSION

  (no content hash needed) and stores the full instruction array, so a
  warm :func:`cached_generate_trace` never runs the generator at all.
  :data:`~repro.synth.TRACE_GEN_VERSION` is part of the key because the
  bytes a (profile, length, seed) triple produces may legitimately
  change when the generation engine's draw protocol changes.

* **Shard cache** (finest grain).  The shard-mergeable engine
  (:mod:`repro.mica.shard`) characterizes contiguous chunks into cold
  mergeable states; each state is pure in the chunk's bytes and the
  characterization config, so entries key by::

      sha256(shard bytes) + config.characterization_fingerprint()
          + sections mask + SHARD_CACHE_VERSION

  and re-characterizing an extended or overlapping trace reuses every
  warm shard whose byte range lines up.

Entries survive process restarts, are shared by parallel dataset
workers, and stay valid under population changes (unlike the
dataset-level cache, which is keyed by the full benchmark name list).

Bump :data:`CHAR_CACHE_VERSION` whenever analyzer semantics change and
:data:`repro.uarch.HPC_SIM_VERSION` whenever simulation semantics do.

Every entry is integrity-stamped via :mod:`repro.perf.integrity`
(level, semantic version, per-field shape/dtype, payload checksums);
loads verify and quarantine rather than serve corrupt bytes, stores
stay atomic and degrade to compute-without-cache — with one
:class:`~repro.errors.CacheDegradedWarning` per directory — when the
directory is unwritable.  ``verify_cache`` is the scan-and-quarantine
entry point behind ``repro cache verify``.
"""

from __future__ import annotations

import hashlib
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from . import integrity
from . import journal as journal_module
from .integrity import QuarantineEvent
from ..config import DEFAULT_CONFIG, ReproConfig
from ..errors import CacheDegradedWarning, CacheIntegrityError
from ..isa import TRACE_DTYPE
from ..mica import NUM_CHARACTERISTICS, CharacteristicVector, characterize
from ..synth import TRACE_GEN_VERSION, WorkloadProfile, generate_trace
from ..trace import Trace
from ..uarch import (
    EV56_CONFIG,
    EV67_CONFIG,
    HPC_METRIC_NAMES,
    HPC_SIM_VERSION,
    HpcVector,
    MachineConfig,
    collect_hpc,
)

#: Bump when any analyzer changes its output for the same trace/config.
CHAR_CACHE_VERSION = 1

#: Bump when the shard-mergeable state layout or semantics change
#: (:mod:`repro.mica.shard`), independently of the final-vector cache.
SHARD_CACHE_VERSION = 1

# -- graceful degradation ---------------------------------------------------
#
# A cache directory that cannot be written (read-only filesystem, disk
# full) must never turn a build into an exception: every ``cached_*``
# function computes without the cache instead, warning once per
# directory per process.

_DEGRADED_DIRECTORIES: Set[str] = set()


def reset_cache_degradation() -> None:
    """Forget which directories have warned (for tests)."""
    _DEGRADED_DIRECTORIES.clear()


def is_cache_degraded(directory: "Path | str") -> bool:
    """Whether this process has degraded the directory's caches.

    True once any ``cached_*`` store against ``directory`` failed with
    an OSError (read-only filesystem, disk full) and the directory
    dropped to compute-without-cache mode.  The service layer polls
    this after each job to switch itself into degraded mode.
    """
    return os.path.abspath(str(directory)) in _DEGRADED_DIRECTORIES


def _degrade(directory: "Path | str", error: BaseException) -> None:
    key = os.path.abspath(str(directory))
    if key in _DEGRADED_DIRECTORIES:
        return
    _DEGRADED_DIRECTORIES.add(key)
    warnings.warn(
        f"cache directory {directory} is not writable ({error}); "
        "continuing without the cache",
        CacheDegradedWarning,
        stacklevel=3,
    )


def trace_fingerprint(trace: Trace) -> str:
    """Content hash of a trace (independent of its name).

    Two traces with identical instruction streams hash identically, so
    renamed or regenerated-but-equal traces share cache entries.
    """
    digest = hashlib.sha256()
    digest.update(str(trace.data.dtype).encode())
    digest.update(trace.data.tobytes())
    return digest.hexdigest()[:32]


def _entry_key(trace: Trace, config: ReproConfig) -> str:
    payload = (
        f"{CHAR_CACHE_VERSION}:{trace_fingerprint(trace)}:"
        f"{config.characterization_fingerprint()}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def _unlink_quietly(path: Path) -> int:
    """Unlink tolerating a concurrent deletion; 1 when we removed it."""
    try:
        path.unlink()
    except FileNotFoundError:
        # A concurrent worker deleted the same entry first — the goal
        # (entry gone) is met either way.
        return 0
    return 1


class _NpzCacheDirectory:
    """Shared machinery of the on-disk cache levels.

    One ``.npz`` file per entry under a common directory (created
    lazily on first store), distinguished per level by ``_prefix``.
    Entries are written atomically (temp file + rename) so concurrent
    workers producing the same entry cannot corrupt each other, and
    every entry embeds the :mod:`repro.perf.integrity` metadata: level,
    semantic version, per-field shape/dtype and payload checksums.  A
    file that fails verification — truncated, bit-flipped,
    wrong-shape, stale-version or foreign — is a *verified miss*: it is
    quarantined (renamed aside, never re-served), not raised and not
    silently returned.
    """

    _prefix = ""
    #: ``{field: (expected shape | None, expected dtype | None)}`` for
    #: verification scans, where the expectation is key-independent.
    _static_expected: "integrity.ExpectedFields" = {}

    def __init__(self, directory: "Path | str"):
        self.directory = Path(directory)

    def _schema_version(self) -> object:
        """The level's current semantic version (stamped into entries)."""
        raise NotImplementedError

    def _path(self, key: str) -> Path:
        return self.directory / f"{self._prefix}-{key}.npz"

    def _load_entry(
        self,
        key: str,
        field: str,
        expected_shape: "tuple | None" = None,
        expected_dtype: "object | None" = None,
    ) -> "Optional[np.ndarray]":
        arrays = integrity.load_entry(
            self._path(key),
            level=self._prefix,
            version=self._schema_version(),
            expected={field: (expected_shape, expected_dtype)},
        )
        return None if arrays is None else arrays.get(field)

    def _store_entry(
        self, key: str, compress: bool = False, **fields: np.ndarray
    ) -> Path:
        return integrity.write_entry(
            self._path(key),
            level=self._prefix,
            version=self._schema_version(),
            fields=fields,
            compress=compress,
        )

    def verify(self) -> "List[QuarantineEvent]":
        """Scan every entry of this level; quarantine the bad ones.

        Returns the quarantine events (empty when all entries passed).
        Healthy entries are left untouched.
        """
        if not self.directory.is_dir():
            return []
        events: "List[QuarantineEvent]" = []
        for path in sorted(self.directory.glob(f"{self._prefix}-*.npz")):
            try:
                integrity.verify_entry(
                    path,
                    level=self._prefix,
                    version=self._schema_version(),
                    expected=self._static_expected,
                )
            except CacheIntegrityError as error:
                quarantined = integrity.quarantine_entry(path)
                events.append(QuarantineEvent(
                    path=str(path),
                    quarantined_to=(
                        str(quarantined) if quarantined is not None else None
                    ),
                    reason=str(error),
                ))
            except OSError:
                continue
        return events

    def clear(self) -> int:
        """Delete all entries; returns the number removed.

        Also sweeps this level's quarantined entries and any stale
        ``tmp-*.npz`` files left behind by crashed writers.  Tolerates
        concurrent workers clearing the same directory (an entry
        deleted under our feet counts for whoever unlinked it).
        """
        if not self.directory.is_dir():
            return 0
        removed = 0
        for pattern in (
            f"{self._prefix}-*.npz",
            f"{self._prefix}-*.npz{integrity.QUARANTINE_SUFFIX}",
            f"tmp-{self._prefix}-*.npz",
        ):
            for path in self.directory.glob(pattern):
                removed += _unlink_quietly(path)
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(
            1 for _ in self.directory.glob(f"{self._prefix}-*.npz")
        )


class CharacterizationCache(_NpzCacheDirectory):
    """Directory of per-trace characterization results.

    Args:
        directory: cache root; created lazily on first store.
    """

    _prefix = "char"
    _static_expected = {"values": ((NUM_CHARACTERISTICS,), np.float64)}

    def _schema_version(self) -> object:
        return CHAR_CACHE_VERSION

    def load(
        self, trace: Trace, config: ReproConfig = DEFAULT_CONFIG
    ) -> "Optional[np.ndarray]":
        """The cached 47-dimensional vector, or None on a miss.

        Wrong-shape or wrong-dtype entries are verified misses — they
        are quarantined and never flow into ``np.vstack``.
        """
        return self._load_entry(
            _entry_key(trace, config), "values",
            expected_shape=(NUM_CHARACTERISTICS,),
            expected_dtype=np.float64,
        )

    def store(
        self,
        trace: Trace,
        config: ReproConfig,
        values: np.ndarray,
    ) -> Path:
        """Persist one characterization result; returns the entry path."""
        return self._store_entry(_entry_key(trace, config), values=values)


def cached_characterize(
    trace: Trace,
    config: ReproConfig = DEFAULT_CONFIG,
    cache_dir: "Path | str | None" = None,
    shards: "int | None" = None,
    shard_size: "int | None" = None,
    jobs: "int | None" = None,
) -> CharacteristicVector:
    """:func:`repro.mica.characterize` behind the on-disk cache.

    With ``cache_dir=None`` this is exactly ``characterize``; otherwise
    hits skip every analyzer and misses populate the cache.  When a
    shard geometry is given, misses compute through the shard-mergeable
    engine (bit-for-bit identical, so the final-vector cache entry is
    the same either way) and each shard's cold state additionally goes
    through the per-shard :class:`ShardCache` level.

    Returns:
        The trace's :class:`~repro.mica.CharacteristicVector` (cached
        values are re-wrapped with the trace's current name).
    """
    sharded = shards is not None or shard_size is not None
    if cache_dir is None:
        if sharded:
            return characterize(
                trace, config, shards=shards, shard_size=shard_size,
                jobs=jobs,
            )
        return characterize(trace, config)
    cache = CharacterizationCache(cache_dir)
    values = cache.load(trace, config)
    if values is None:
        if sharded:
            vector = characterize(
                trace, config, shards=shards, shard_size=shard_size,
                jobs=jobs, cache_dir=cache_dir,
            )
        else:
            vector = characterize(trace, config)
        try:
            cache.store(trace, config, vector.values)
        except OSError as error:
            _degrade(cache.directory, error)
        return vector
    return CharacteristicVector(name=trace.name, values=values)


# ---------------------------------------------------------------------------
# HPC cache (beside the characterization cache)
# ---------------------------------------------------------------------------


def _hpc_key(
    trace: Trace, inorder: MachineConfig, ooo: MachineConfig
) -> str:
    payload = (
        f"{HPC_SIM_VERSION}:{trace_fingerprint(trace)}:"
        f"{inorder.fingerprint()}:{ooo.fingerprint()}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


class HpcCache(_NpzCacheDirectory):
    """Directory of per-trace hardware-performance-counter vectors.

    Args:
        directory: cache root; created lazily on first store.  Shares a
            directory with the other cache levels (distinct ``hpc-``
            file prefix).

    One small ``.npz`` per (trace content, machine pair,
    :data:`~repro.uarch.HPC_SIM_VERSION`) holds the seven-metric
    vector.
    """

    _prefix = "hpc"
    _static_expected = {"values": ((len(HPC_METRIC_NAMES),), np.float64)}

    def _schema_version(self) -> object:
        return HPC_SIM_VERSION

    def load(
        self,
        trace: Trace,
        inorder: MachineConfig = EV56_CONFIG,
        ooo: MachineConfig = EV67_CONFIG,
    ) -> "Optional[np.ndarray]":
        """The cached 7-dimensional vector, or None on a miss.

        Wrong-shape or wrong-dtype entries are verified misses — they
        are quarantined and never flow into ``np.vstack``.
        """
        return self._load_entry(
            _hpc_key(trace, inorder, ooo), "values",
            expected_shape=(len(HPC_METRIC_NAMES),),
            expected_dtype=np.float64,
        )

    def store(
        self,
        trace: Trace,
        inorder: MachineConfig,
        ooo: MachineConfig,
        values: np.ndarray,
    ) -> Path:
        """Persist one HPC vector; returns the entry path."""
        return self._store_entry(
            _hpc_key(trace, inorder, ooo), values=values
        )


def cached_collect_hpc(
    trace: Trace,
    inorder: MachineConfig = EV56_CONFIG,
    ooo: MachineConfig = EV67_CONFIG,
    cache_dir: "Path | str | None" = None,
) -> HpcVector:
    """:func:`repro.uarch.collect_hpc` behind the on-disk cache.

    With ``cache_dir=None`` this is exactly ``collect_hpc``; otherwise
    hits skip both pipeline models (and the whole event simulation) and
    misses populate the cache.

    Returns:
        The trace's :class:`~repro.uarch.HpcVector` (cached values are
        re-wrapped with the trace's current name).
    """
    if cache_dir is None:
        return collect_hpc(trace, inorder, ooo)
    cache = HpcCache(cache_dir)
    values = cache.load(trace, inorder, ooo)
    if values is None:
        vector = collect_hpc(trace, inorder, ooo)
        try:
            cache.store(trace, inorder, ooo, vector.values)
        except OSError as error:
            _degrade(cache.directory, error)
        return vector
    return HpcVector(name=trace.name, values=values)


# ---------------------------------------------------------------------------
# Trace cache (below the characterization cache)
# ---------------------------------------------------------------------------


def _trace_key(profile: WorkloadProfile, length: int, seed: int) -> str:
    payload = (
        f"{TRACE_GEN_VERSION}:{profile.fingerprint()}:{length}:{seed}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


class TraceCache(_NpzCacheDirectory):
    """Directory of generated traces, keyed by (profile, length, seed).

    Args:
        directory: cache root; created lazily on first store.  Shares a
            directory with the other cache levels (distinct ``trace-``
            file prefix).
    """

    _prefix = "trace"
    _static_expected = {"data": (None, TRACE_DTYPE)}

    def _schema_version(self) -> object:
        return TRACE_GEN_VERSION

    def load(
        self, profile: WorkloadProfile, length: int, seed: int = 0
    ) -> "Optional[Trace]":
        """The cached trace (renamed after the profile), or None.

        Wrong-dtype or wrong-length entries are verified misses (the
        file is quarantined, not re-served).
        """
        data = self._load_entry(
            _trace_key(profile, length, seed), "data",
            expected_shape=(length,), expected_dtype=TRACE_DTYPE,
        )
        if data is None:
            return None
        return Trace(data, name=profile.name)

    def store(
        self,
        profile: WorkloadProfile,
        length: int,
        seed: int,
        trace: Trace,
    ) -> Path:
        """Persist one generated trace; returns the entry path."""
        return self._store_entry(
            _trace_key(profile, length, seed), compress=True,
            data=trace.data,
        )


def cached_generate_trace(
    profile: WorkloadProfile,
    length: int,
    seed: int = 0,
    cache_dir: "Path | str | None" = None,
) -> Trace:
    """:func:`repro.synth.generate_trace` behind the on-disk cache.

    With ``cache_dir=None`` this is exactly ``generate_trace``;
    otherwise hits skip the generator entirely (bit-identical bytes are
    returned from disk) and misses populate the cache.
    """
    if cache_dir is None:
        return generate_trace(profile, length, seed=seed)
    cache = TraceCache(cache_dir)
    trace = cache.load(profile, length, seed)
    if trace is None:
        trace = generate_trace(profile, length, seed=seed)
        try:
            cache.store(profile, length, seed, trace)
        except OSError as error:
            _degrade(cache.directory, error)
    return trace


# ---------------------------------------------------------------------------
# Shard cache (per-shard mergeable states, below the characterization
# cache)
# ---------------------------------------------------------------------------


def shard_entry_key(
    shard_fingerprint: str,
    start: int,
    config: ReproConfig,
    sections_mask: int,
) -> str:
    """Cache key for one shard's cold mergeable state.

    Keys by the shard's *content* hash (so an extended or overlapping
    trace reuses warm shards wherever the byte ranges line up), its
    absolute start offset (ILP window alignment and register last-writer
    positions are absolute, so the same bytes at a different offset
    yield a different state), the characterization fingerprint, the
    wanted-sections mask, and :data:`SHARD_CACHE_VERSION`.
    """
    payload = (
        f"{SHARD_CACHE_VERSION}:{shard_fingerprint}:{start}:"
        f"{config.characterization_fingerprint()}:{sections_mask}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


class ShardCache(_NpzCacheDirectory):
    """Directory of per-shard cold characterization states.

    Each entry holds one serialized :class:`repro.mica.shard.ShardState`
    (the *cold*, carry-independent round of the shard engine — the
    carry-dependent PPM prediction pass is recomputed per run, so it is
    never cached).  Entries are variable-field ``.npz`` files: the
    fields present depend on the sections requested, so verification
    relies on each entry's own recorded metadata and checksums rather
    than a static shape table.

    Args:
        directory: cache root; created lazily on first store.  Shares a
            directory with the other cache levels (distinct ``shard-``
            file prefix).
    """

    _prefix = "shard"

    def _schema_version(self) -> object:
        return SHARD_CACHE_VERSION

    def load(self, key: str) -> "Optional[Dict[str, np.ndarray]]":
        """The entry's serialized state arrays, or None on a miss."""
        return integrity.load_entry(
            self._path(key),
            level=self._prefix,
            version=self._schema_version(),
        )

    def store(self, key: str, arrays: "Dict[str, np.ndarray]") -> Path:
        """Persist one serialized shard state; returns the entry path."""
        return self._store_entry(key, **arrays)


# ---------------------------------------------------------------------------
# Whole-directory verification (``repro cache verify``)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheVerifyReport:
    """Result of one integrity scan over a cache directory.

    Attributes:
        directory: the scanned cache root.
        scanned: entries examined per level (including ``dataset`` and
            ``journal``).
        quarantined: one event per entry that failed verification.
        swept_temporaries: stale ``tmp-*.npz`` writer leftovers and
            ``tmp-journal-*.jsonl`` rotation leftovers removed.
        journal_truncations: one event per write-ahead journal whose
            torn tail (a crash mid-append) was repaired by truncating
            back to the longest valid record prefix.
    """

    directory: str
    scanned: Dict[str, int]
    quarantined: Tuple[QuarantineEvent, ...]
    swept_temporaries: int
    journal_truncations: Tuple["journal_module.JournalTruncation", ...] = ()

    @property
    def total_scanned(self) -> int:
        return sum(self.scanned.values())

    @property
    def ok(self) -> int:
        return self.total_scanned - len(self.quarantined)

    def format(self) -> str:
        lines = [
            f"cache verify: {self.directory}",
            "  scanned " + ", ".join(
                f"{count} {level}" for level, count in self.scanned.items()
            ) + f" ({self.ok} ok, {len(self.quarantined)} quarantined, "
                f"{self.swept_temporaries} stale temp files swept, "
                f"{len(self.journal_truncations)} torn journal tail(s) "
                "repaired)",
        ]
        for event in self.quarantined:
            target = event.quarantined_to or "<rename failed>"
            lines.append(f"  quarantined {event.path} -> {target}")
            lines.append(f"    reason: {event.reason}")
        for truncation in self.journal_truncations:
            lines.append(
                f"  repaired {truncation.path}: kept "
                f"{truncation.valid_records} record(s), dropped "
                f"{truncation.dropped_bytes} byte(s)"
            )
            lines.append(f"    reason: {truncation.reason}")
        return "\n".join(lines)


def sweep_temporaries(
    directory: "Path | str", older_than: float = 3600.0
) -> int:
    """Remove temp files left behind by crashed writers and rotations.

    Covers the atomic cache writers' ``tmp-*.npz`` files and the
    write-ahead journal rotation's ``tmp-journal-*.jsonl`` files.  Only
    files whose mtime is at least ``older_than`` seconds old are
    removed, so a live writer's in-flight temporary survives.  Returns
    the number removed.
    """
    import time

    root = Path(directory)
    if not root.is_dir():
        return 0
    removed = 0
    now = time.time()
    patterns = (
        "tmp-*.npz",
        f"tmp-{journal_module.JOURNAL_PREFIX}*{journal_module.JOURNAL_SUFFIX}",
    )
    for pattern in patterns:
        for path in root.glob(pattern):
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if age >= older_than:
                removed += _unlink_quietly(path)
    return removed


def verify_cache(
    directory: "Path | str",
    sweep_older_than: float = 3600.0,
) -> CacheVerifyReport:
    """Scan all five cache levels; quarantine entries that fail.

    Covers the per-trace levels (``char``/``hpc``/``trace``) and the
    per-shard ``shard`` level via each
    level's :meth:`~_NpzCacheDirectory.verify` and the dataset-level
    ``dataset-*.npz`` matrices, replays every ``journal-*.jsonl``
    write-ahead journal (repairing torn tails in place and reporting
    each repair), then sweeps stale writer and rotation temporaries.
    Healthy entries are untouched; the scan never raises on bad bytes.
    """
    root = Path(directory)
    scanned: "Dict[str, int]" = {}
    events: "List[QuarantineEvent]" = []
    for level in (CharacterizationCache, HpcCache, TraceCache, ShardCache):
        cache = level(root)
        scanned[cache._prefix] = len(cache)
        events.extend(cache.verify())

    # Dataset-level matrices (population-dependent shapes: verified
    # against their own recorded metadata + checksums).
    from ..experiments.dataset import CACHE_VERSION

    dataset_paths = (
        sorted(root.glob("dataset-*.npz")) if root.is_dir() else []
    )
    scanned["dataset"] = len(dataset_paths)
    for path in dataset_paths:
        try:
            integrity.verify_entry(
                path, level="dataset", version=CACHE_VERSION,
                expected={
                    "mica": (None, np.float64),
                    "hpc": (None, np.float64),
                },
            )
        except CacheIntegrityError as error:
            quarantined = integrity.quarantine_entry(path)
            events.append(QuarantineEvent(
                path=str(path),
                quarantined_to=(
                    str(quarantined) if quarantined is not None else None
                ),
                reason=str(error),
            ))
        except OSError:
            continue

    # Write-ahead journals (dataset builds, service jobs): replay with
    # repair, so a torn tail left by a crash is truncated back to the
    # longest valid prefix and reported.
    journal_paths = (
        sorted(root.glob(
            f"{journal_module.JOURNAL_PREFIX}*"
            f"{journal_module.JOURNAL_SUFFIX}"
        ))
        if root.is_dir() else []
    )
    scanned["journal"] = len(journal_paths)
    truncations: "List[journal_module.JournalTruncation]" = []
    for path in journal_paths:
        try:
            replay = journal_module.replay_journal(path, repair=True)
        except OSError:
            continue
        if replay.truncation is not None:
            truncations.append(replay.truncation)

    swept = sweep_temporaries(root, older_than=sweep_older_than)
    return CacheVerifyReport(
        directory=str(root),
        scanned=scanned,
        quarantined=tuple(events),
        swept_temporaries=swept,
        journal_truncations=tuple(truncations),
    )
