"""On-disk caches: characterization results and generated traces.

Two cache levels live here, forming a hierarchy under the dataset-level
matrix cache of :mod:`repro.experiments.dataset`:

* **Characterization cache** (top).  Characterizing one trace is pure:
  the 47-dimensional MICA vector (and the 7-dimensional HPC vector)
  depend only on the trace contents and the characterization fields of
  :class:`~repro.config.ReproConfig`.  Entries key by::

      sha256(trace bytes) + config.characterization_fingerprint() + version

  and store one small ``.npz`` per trace.

* **Trace cache** (bottom).  Generating a trace is also pure — a
  function of the profile knobs, the length and the per-trace seed —
  but the characterization cache cannot skip *generation* (hashing the
  content requires the bytes).  The trace cache closes that gap: it
  keys by::

      profile.fingerprint() + length + seed + TRACE_GEN_VERSION

  (no content hash needed) and stores the full instruction array, so a
  warm :func:`cached_generate_trace` never runs the generator at all.
  :data:`~repro.synth.TRACE_GEN_VERSION` is part of the key because the
  bytes a (profile, length, seed) triple produces may legitimately
  change when the generation engine's draw protocol changes.

Entries survive process restarts, are shared by parallel dataset
workers, and stay valid under population changes (unlike the
dataset-level cache, which is keyed by the full benchmark name list).

Bump :data:`CHAR_CACHE_VERSION` whenever analyzer semantics change.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG, ReproConfig
from ..isa import TRACE_DTYPE
from ..mica import CharacteristicVector, characterize
from ..synth import TRACE_GEN_VERSION, WorkloadProfile, generate_trace
from ..trace import Trace

#: Bump when any analyzer changes its output for the same trace/config.
CHAR_CACHE_VERSION = 1


def trace_fingerprint(trace: Trace) -> str:
    """Content hash of a trace (independent of its name).

    Two traces with identical instruction streams hash identically, so
    renamed or regenerated-but-equal traces share cache entries.
    """
    digest = hashlib.sha256()
    digest.update(str(trace.data.dtype).encode())
    digest.update(trace.data.tobytes())
    return digest.hexdigest()[:32]


def _entry_key(trace: Trace, config: ReproConfig) -> str:
    payload = (
        f"{CHAR_CACHE_VERSION}:{trace_fingerprint(trace)}:"
        f"{config.characterization_fingerprint()}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


class CharacterizationCache:
    """Directory of per-trace characterization results.

    Args:
        directory: cache root; created lazily on first store.

    Entries are written atomically (temp file + rename) so concurrent
    workers characterizing the same trace cannot corrupt each other.
    """

    def __init__(self, directory: "Path | str"):
        self.directory = Path(directory)

    def _path(self, key: str) -> Path:
        return self.directory / f"char-{key}.npz"

    def load(
        self, trace: Trace, config: ReproConfig = DEFAULT_CONFIG
    ) -> "Optional[np.ndarray]":
        """The cached 47-dimensional vector, or None on a miss."""
        path = self._path(_entry_key(trace, config))
        if not path.is_file():
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                return archive["values"]
        except (OSError, ValueError, KeyError):
            # A truncated or foreign file is a miss, not an error.
            return None

    def store(
        self,
        trace: Trace,
        config: ReproConfig,
        values: np.ndarray,
    ) -> Path:
        """Persist one characterization result; returns the entry path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(_entry_key(trace, config))
        # The tmp- prefix keeps half-written files out of the entry
        # glob; the .npz suffix stops np.savez renaming the file.
        temporary = path.with_name(f"tmp-{path.stem}.{os.getpid()}.npz")
        np.savez(temporary, values=values)
        os.replace(temporary, path)
        return path

    def clear(self) -> int:
        """Delete all entries; returns the number removed."""
        if not self.directory.is_dir():
            return 0
        removed = 0
        for path in self.directory.glob("char-*.npz"):
            path.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("char-*.npz"))


def cached_characterize(
    trace: Trace,
    config: ReproConfig = DEFAULT_CONFIG,
    cache_dir: "Path | str | None" = None,
) -> CharacteristicVector:
    """:func:`repro.mica.characterize` behind the on-disk cache.

    With ``cache_dir=None`` this is exactly ``characterize``; otherwise
    hits skip every analyzer and misses populate the cache.

    Returns:
        The trace's :class:`~repro.mica.CharacteristicVector` (cached
        values are re-wrapped with the trace's current name).
    """
    if cache_dir is None:
        return characterize(trace, config)
    cache = CharacterizationCache(cache_dir)
    values = cache.load(trace, config)
    if values is None:
        vector = characterize(trace, config)
        cache.store(trace, config, vector.values)
        return vector
    return CharacteristicVector(name=trace.name, values=values)


# ---------------------------------------------------------------------------
# Trace cache (below the characterization cache)
# ---------------------------------------------------------------------------


def _trace_key(profile: WorkloadProfile, length: int, seed: int) -> str:
    payload = (
        f"{TRACE_GEN_VERSION}:{profile.fingerprint()}:{length}:{seed}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


class TraceCache:
    """Directory of generated traces, keyed by (profile, length, seed).

    Args:
        directory: cache root; created lazily on first store.  Shares a
            directory with :class:`CharacterizationCache` (distinct
            ``trace-`` file prefix).

    Entries are written atomically (temp file + rename) so concurrent
    workers generating the same trace cannot corrupt each other.
    """

    def __init__(self, directory: "Path | str"):
        self.directory = Path(directory)

    def _path(self, key: str) -> Path:
        return self.directory / f"trace-{key}.npz"

    def load(
        self, profile: WorkloadProfile, length: int, seed: int = 0
    ) -> "Optional[Trace]":
        """The cached trace (renamed after the profile), or None."""
        path = self._path(_trace_key(profile, length, seed))
        if not path.is_file():
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                data = archive["data"]
        except (OSError, ValueError, KeyError):
            # A truncated or foreign file is a miss, not an error.
            return None
        if data.dtype != TRACE_DTYPE or len(data) != length:
            return None
        return Trace(data, name=profile.name)

    def store(
        self,
        profile: WorkloadProfile,
        length: int,
        seed: int,
        trace: Trace,
    ) -> Path:
        """Persist one generated trace; returns the entry path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(_trace_key(profile, length, seed))
        # The tmp- prefix keeps half-written files out of the entry
        # glob; the .npz suffix stops np.savez renaming the file.
        temporary = path.with_name(f"tmp-{path.stem}.{os.getpid()}.npz")
        np.savez_compressed(temporary, data=trace.data)
        os.replace(temporary, path)
        return path

    def clear(self) -> int:
        """Delete all entries; returns the number removed."""
        if not self.directory.is_dir():
            return 0
        removed = 0
        for path in self.directory.glob("trace-*.npz"):
            path.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("trace-*.npz"))


def cached_generate_trace(
    profile: WorkloadProfile,
    length: int,
    seed: int = 0,
    cache_dir: "Path | str | None" = None,
) -> Trace:
    """:func:`repro.synth.generate_trace` behind the on-disk cache.

    With ``cache_dir=None`` this is exactly ``generate_trace``;
    otherwise hits skip the generator entirely (bit-identical bytes are
    returned from disk) and misses populate the cache.
    """
    if cache_dir is None:
        return generate_trace(profile, length, seed=seed)
    cache = TraceCache(cache_dir)
    trace = cache.load(profile, length, seed)
    if trace is None:
        trace = generate_trace(profile, length, seed=seed)
        cache.store(profile, length, seed, trace)
    return trace
