"""On-disk caches: characterization results, HPC vectors, traces.

Three cache levels live here, forming a hierarchy under the
dataset-level matrix cache of :mod:`repro.experiments.dataset`:

* **Characterization cache** (top).  Characterizing one trace is pure:
  the 47-dimensional MICA vector depends only on the trace contents and
  the characterization fields of :class:`~repro.config.ReproConfig`.
  Entries key by::

      sha256(trace bytes) + config.characterization_fingerprint() + version

  and store one small ``.npz`` per trace.

* **HPC cache** (beside it).  The seven-metric
  hardware-performance-counter vector is equally pure — a function of
  the trace contents and the two simulated machines — so entries key
  by::

      sha256(trace bytes) + inorder.fingerprint() + ooo.fingerprint()
          + HPC_SIM_VERSION

  and a warm :func:`cached_collect_hpc` performs zero pipeline-model
  runs (asserted via :func:`repro.uarch.hpc_call_count`).

* **Trace cache** (bottom).  Generating a trace is also pure — a
  function of the profile knobs, the length and the per-trace seed —
  but the content-keyed caches cannot skip *generation* (hashing the
  content requires the bytes).  The trace cache closes that gap: it
  keys by::

      profile.fingerprint() + length + seed + TRACE_GEN_VERSION

  (no content hash needed) and stores the full instruction array, so a
  warm :func:`cached_generate_trace` never runs the generator at all.
  :data:`~repro.synth.TRACE_GEN_VERSION` is part of the key because the
  bytes a (profile, length, seed) triple produces may legitimately
  change when the generation engine's draw protocol changes.

Entries survive process restarts, are shared by parallel dataset
workers, and stay valid under population changes (unlike the
dataset-level cache, which is keyed by the full benchmark name list).

Bump :data:`CHAR_CACHE_VERSION` whenever analyzer semantics change and
:data:`repro.uarch.HPC_SIM_VERSION` whenever simulation semantics do.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG, ReproConfig
from ..isa import TRACE_DTYPE
from ..mica import CharacteristicVector, characterize
from ..synth import TRACE_GEN_VERSION, WorkloadProfile, generate_trace
from ..trace import Trace
from ..uarch import (
    EV56_CONFIG,
    EV67_CONFIG,
    HPC_SIM_VERSION,
    HpcVector,
    MachineConfig,
    collect_hpc,
)

#: Bump when any analyzer changes its output for the same trace/config.
CHAR_CACHE_VERSION = 1


def trace_fingerprint(trace: Trace) -> str:
    """Content hash of a trace (independent of its name).

    Two traces with identical instruction streams hash identically, so
    renamed or regenerated-but-equal traces share cache entries.
    """
    digest = hashlib.sha256()
    digest.update(str(trace.data.dtype).encode())
    digest.update(trace.data.tobytes())
    return digest.hexdigest()[:32]


def _entry_key(trace: Trace, config: ReproConfig) -> str:
    payload = (
        f"{CHAR_CACHE_VERSION}:{trace_fingerprint(trace)}:"
        f"{config.characterization_fingerprint()}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


class _NpzCacheDirectory:
    """Shared machinery of the on-disk cache levels.

    One ``.npz`` file per entry under a common directory (created
    lazily on first store), distinguished per level by ``_prefix``.
    Entries are written atomically (temp file + rename) so concurrent
    workers producing the same entry cannot corrupt each other, and a
    truncated or foreign file always reads as a miss, never an error.
    """

    _prefix = ""

    def __init__(self, directory: "Path | str"):
        self.directory = Path(directory)

    def _path(self, key: str) -> Path:
        return self.directory / f"{self._prefix}-{key}.npz"

    def _load_entry(self, key: str, field: str) -> "Optional[np.ndarray]":
        path = self._path(key)
        if not path.is_file():
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                return archive[field]
        except (OSError, ValueError, KeyError):
            # A truncated or foreign file is a miss, not an error.
            return None

    def _store_entry(
        self, key: str, compress: bool = False, **fields: np.ndarray
    ) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        # The tmp- prefix keeps half-written files out of the entry
        # glob; the .npz suffix stops np.savez renaming the file.
        temporary = path.with_name(f"tmp-{path.stem}.{os.getpid()}.npz")
        writer = np.savez_compressed if compress else np.savez
        writer(temporary, **fields)
        os.replace(temporary, path)
        return path

    def clear(self) -> int:
        """Delete all entries; returns the number removed."""
        if not self.directory.is_dir():
            return 0
        removed = 0
        for path in self.directory.glob(f"{self._prefix}-*.npz"):
            path.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(
            1 for _ in self.directory.glob(f"{self._prefix}-*.npz")
        )


class CharacterizationCache(_NpzCacheDirectory):
    """Directory of per-trace characterization results.

    Args:
        directory: cache root; created lazily on first store.
    """

    _prefix = "char"

    def load(
        self, trace: Trace, config: ReproConfig = DEFAULT_CONFIG
    ) -> "Optional[np.ndarray]":
        """The cached 47-dimensional vector, or None on a miss."""
        return self._load_entry(_entry_key(trace, config), "values")

    def store(
        self,
        trace: Trace,
        config: ReproConfig,
        values: np.ndarray,
    ) -> Path:
        """Persist one characterization result; returns the entry path."""
        return self._store_entry(_entry_key(trace, config), values=values)


def cached_characterize(
    trace: Trace,
    config: ReproConfig = DEFAULT_CONFIG,
    cache_dir: "Path | str | None" = None,
) -> CharacteristicVector:
    """:func:`repro.mica.characterize` behind the on-disk cache.

    With ``cache_dir=None`` this is exactly ``characterize``; otherwise
    hits skip every analyzer and misses populate the cache.

    Returns:
        The trace's :class:`~repro.mica.CharacteristicVector` (cached
        values are re-wrapped with the trace's current name).
    """
    if cache_dir is None:
        return characterize(trace, config)
    cache = CharacterizationCache(cache_dir)
    values = cache.load(trace, config)
    if values is None:
        vector = characterize(trace, config)
        cache.store(trace, config, vector.values)
        return vector
    return CharacteristicVector(name=trace.name, values=values)


# ---------------------------------------------------------------------------
# HPC cache (beside the characterization cache)
# ---------------------------------------------------------------------------


def _hpc_key(
    trace: Trace, inorder: MachineConfig, ooo: MachineConfig
) -> str:
    payload = (
        f"{HPC_SIM_VERSION}:{trace_fingerprint(trace)}:"
        f"{inorder.fingerprint()}:{ooo.fingerprint()}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


class HpcCache(_NpzCacheDirectory):
    """Directory of per-trace hardware-performance-counter vectors.

    Args:
        directory: cache root; created lazily on first store.  Shares a
            directory with the other cache levels (distinct ``hpc-``
            file prefix).

    One small ``.npz`` per (trace content, machine pair,
    :data:`~repro.uarch.HPC_SIM_VERSION`) holds the seven-metric
    vector.
    """

    _prefix = "hpc"

    def load(
        self,
        trace: Trace,
        inorder: MachineConfig = EV56_CONFIG,
        ooo: MachineConfig = EV67_CONFIG,
    ) -> "Optional[np.ndarray]":
        """The cached 7-dimensional vector, or None on a miss."""
        return self._load_entry(_hpc_key(trace, inorder, ooo), "values")

    def store(
        self,
        trace: Trace,
        inorder: MachineConfig,
        ooo: MachineConfig,
        values: np.ndarray,
    ) -> Path:
        """Persist one HPC vector; returns the entry path."""
        return self._store_entry(
            _hpc_key(trace, inorder, ooo), values=values
        )


def cached_collect_hpc(
    trace: Trace,
    inorder: MachineConfig = EV56_CONFIG,
    ooo: MachineConfig = EV67_CONFIG,
    cache_dir: "Path | str | None" = None,
) -> HpcVector:
    """:func:`repro.uarch.collect_hpc` behind the on-disk cache.

    With ``cache_dir=None`` this is exactly ``collect_hpc``; otherwise
    hits skip both pipeline models (and the whole event simulation) and
    misses populate the cache.

    Returns:
        The trace's :class:`~repro.uarch.HpcVector` (cached values are
        re-wrapped with the trace's current name).
    """
    if cache_dir is None:
        return collect_hpc(trace, inorder, ooo)
    cache = HpcCache(cache_dir)
    values = cache.load(trace, inorder, ooo)
    if values is None:
        vector = collect_hpc(trace, inorder, ooo)
        cache.store(trace, inorder, ooo, vector.values)
        return vector
    return HpcVector(name=trace.name, values=values)


# ---------------------------------------------------------------------------
# Trace cache (below the characterization cache)
# ---------------------------------------------------------------------------


def _trace_key(profile: WorkloadProfile, length: int, seed: int) -> str:
    payload = (
        f"{TRACE_GEN_VERSION}:{profile.fingerprint()}:{length}:{seed}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


class TraceCache(_NpzCacheDirectory):
    """Directory of generated traces, keyed by (profile, length, seed).

    Args:
        directory: cache root; created lazily on first store.  Shares a
            directory with the other cache levels (distinct ``trace-``
            file prefix).
    """

    _prefix = "trace"

    def load(
        self, profile: WorkloadProfile, length: int, seed: int = 0
    ) -> "Optional[Trace]":
        """The cached trace (renamed after the profile), or None."""
        data = self._load_entry(_trace_key(profile, length, seed), "data")
        if data is None or data.dtype != TRACE_DTYPE or len(data) != length:
            return None
        return Trace(data, name=profile.name)

    def store(
        self,
        profile: WorkloadProfile,
        length: int,
        seed: int,
        trace: Trace,
    ) -> Path:
        """Persist one generated trace; returns the entry path."""
        return self._store_entry(
            _trace_key(profile, length, seed), compress=True,
            data=trace.data,
        )


def cached_generate_trace(
    profile: WorkloadProfile,
    length: int,
    seed: int = 0,
    cache_dir: "Path | str | None" = None,
) -> Trace:
    """:func:`repro.synth.generate_trace` behind the on-disk cache.

    With ``cache_dir=None`` this is exactly ``generate_trace``;
    otherwise hits skip the generator entirely (bit-identical bytes are
    returned from disk) and misses populate the cache.
    """
    if cache_dir is None:
        return generate_trace(profile, length, seed=seed)
    cache = TraceCache(cache_dir)
    trace = cache.load(profile, length, seed)
    if trace is None:
        trace = generate_trace(profile, length, seed=seed)
        cache.store(profile, length, seed, trace)
    return trace
