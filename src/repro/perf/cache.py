"""On-disk characterization cache.

Characterizing one trace is pure: the 47-dimensional MICA vector (and
the 7-dimensional HPC vector) depend only on the trace contents and the
characterization fields of :class:`~repro.config.ReproConfig`.  The
cache therefore keys entries by::

    sha256(trace bytes) + config.characterization_fingerprint() + version

and stores one small ``.npz`` per trace.  Entries survive process
restarts, are shared by parallel dataset workers, and stay valid under
population changes (unlike the dataset-level cache, which is keyed by
the full benchmark name list).

Bump :data:`CHAR_CACHE_VERSION` whenever analyzer semantics change.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG, ReproConfig
from ..mica import CharacteristicVector, characterize
from ..trace import Trace

#: Bump when any analyzer changes its output for the same trace/config.
CHAR_CACHE_VERSION = 1


def trace_fingerprint(trace: Trace) -> str:
    """Content hash of a trace (independent of its name).

    Two traces with identical instruction streams hash identically, so
    renamed or regenerated-but-equal traces share cache entries.
    """
    digest = hashlib.sha256()
    digest.update(str(trace.data.dtype).encode())
    digest.update(trace.data.tobytes())
    return digest.hexdigest()[:32]


def _entry_key(trace: Trace, config: ReproConfig) -> str:
    payload = (
        f"{CHAR_CACHE_VERSION}:{trace_fingerprint(trace)}:"
        f"{config.characterization_fingerprint()}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


class CharacterizationCache:
    """Directory of per-trace characterization results.

    Args:
        directory: cache root; created lazily on first store.

    Entries are written atomically (temp file + rename) so concurrent
    workers characterizing the same trace cannot corrupt each other.
    """

    def __init__(self, directory: "Path | str"):
        self.directory = Path(directory)

    def _path(self, key: str) -> Path:
        return self.directory / f"char-{key}.npz"

    def load(
        self, trace: Trace, config: ReproConfig = DEFAULT_CONFIG
    ) -> "Optional[np.ndarray]":
        """The cached 47-dimensional vector, or None on a miss."""
        path = self._path(_entry_key(trace, config))
        if not path.is_file():
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                return archive["values"]
        except (OSError, ValueError, KeyError):
            # A truncated or foreign file is a miss, not an error.
            return None

    def store(
        self,
        trace: Trace,
        config: ReproConfig,
        values: np.ndarray,
    ) -> Path:
        """Persist one characterization result; returns the entry path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(_entry_key(trace, config))
        # Keep the .npz suffix so np.savez does not rename the file.
        temporary = path.with_name(f"{path.stem}.tmp{os.getpid()}.npz")
        np.savez(temporary, values=values)
        os.replace(temporary, path)
        return path

    def clear(self) -> int:
        """Delete all entries; returns the number removed."""
        if not self.directory.is_dir():
            return 0
        removed = 0
        for path in self.directory.glob("char-*.npz"):
            path.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("char-*.npz"))


def cached_characterize(
    trace: Trace,
    config: ReproConfig = DEFAULT_CONFIG,
    cache_dir: "Path | str | None" = None,
) -> CharacteristicVector:
    """:func:`repro.mica.characterize` behind the on-disk cache.

    With ``cache_dir=None`` this is exactly ``characterize``; otherwise
    hits skip every analyzer and misses populate the cache.

    Returns:
        The trace's :class:`~repro.mica.CharacteristicVector` (cached
        values are re-wrapped with the trace's current name).
    """
    if cache_dir is None:
        return characterize(trace, config)
    cache = CharacterizationCache(cache_dir)
    values = cache.load(trace, config)
    if values is None:
        vector = characterize(trace, config)
        cache.store(trace, config, vector.values)
        return vector
    return CharacteristicVector(name=trace.name, values=values)
