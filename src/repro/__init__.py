"""repro — reproduction of "Comparing Benchmarks Using Key
Microarchitecture-Independent Characteristics" (Hoste & Eeckhout,
IISWC 2006).

Package layout:

* :mod:`repro.isa` / :mod:`repro.trace` — the instrumentation substrate
  (Alpha-like ISA, dynamic instruction traces, on-disk trace format);
* :mod:`repro.synth` / :mod:`repro.workloads` — the benchmark substrate
  (synthetic program model, the 122 benchmarks of Table I);
* :mod:`repro.mica` — the paper's contribution: the 47
  microarchitecture-independent characteristics;
* :mod:`repro.uarch` — the hardware-performance-counter substrate
  (Alpha 21164A / 21264A simulators);
* :mod:`repro.analysis` — normalization, distances, correlation
  elimination, the genetic algorithm, PCA, ROC, k-means + BIC, kiviats;
* :mod:`repro.experiments` — one driver per table/figure of the paper;
* :mod:`repro.reporting` / :mod:`repro.cli` — text output and the
  ``mica-repro`` command.

Quickstart::

    from repro.workloads import get_benchmark
    from repro.synth import generate_trace
    from repro.mica import characterize

    benchmark = get_benchmark("spec2000/mcf/ref")
    trace = generate_trace(benchmark.profile, 100_000)
    print(characterize(trace).format())
"""

from .config import DEFAULT_CONFIG, SMOKE_CONFIG, ReproConfig
from .errors import (
    AnalysisError,
    CharacterizationError,
    ConfigurationError,
    ProfileError,
    ReproError,
    SimulationError,
    TraceError,
    TraceFormatError,
    UnknownBenchmarkError,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "SMOKE_CONFIG",
    "ReproConfig",
    "ReproError",
    "TraceError",
    "TraceFormatError",
    "ProfileError",
    "UnknownBenchmarkError",
    "CharacterizationError",
    "SimulationError",
    "AnalysisError",
    "ConfigurationError",
    "__version__",
]
