"""Incremental trace construction.

:class:`TraceBuilder` accumulates dynamic instructions in growable column
buffers and finalizes them into an immutable :class:`~repro.trace.Trace`.
It offers one low-level ``append`` plus typed helpers (``load``, ``store``,
``branch``, ``alu``, ...) that keep call sites readable and enforce the
per-class field invariants at construction time.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from ..isa import NO_REG, OpClass, TRACE_DTYPE
from ..isa.registers import is_valid_register
from .trace import Trace

_INITIAL_CAPACITY = 1024


class TraceBuilder:
    """Builds a :class:`Trace` one instruction at a time."""

    def __init__(self, name: str = "", capacity: int = _INITIAL_CAPACITY):
        self.name = name
        self._buffer = np.empty(max(capacity, 1), dtype=TRACE_DTYPE)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _grow(self) -> None:
        new_buffer = np.empty(len(self._buffer) * 2, dtype=TRACE_DTYPE)
        new_buffer[: self._size] = self._buffer[: self._size]
        self._buffer = new_buffer

    def append(
        self,
        pc: int,
        opclass: OpClass,
        src1: int = NO_REG,
        src2: int = NO_REG,
        dst: int = NO_REG,
        mem_addr: int = 0,
        taken: bool = False,
        target: int = 0,
    ) -> None:
        """Append one dynamic instruction.

        Raises:
            TraceError: if register indices are invalid or class/field
                invariants are violated.
        """
        for slot, reg in (("src1", src1), ("src2", src2), ("dst", dst)):
            if not is_valid_register(reg):
                raise TraceError(f"{slot} register index out of range: {reg}")
        if opclass.is_memory and mem_addr == 0:
            raise TraceError("memory instruction requires nonzero mem_addr")
        if not opclass.is_memory and mem_addr != 0:
            raise TraceError("non-memory instruction must have mem_addr == 0")
        if self._size == len(self._buffer):
            self._grow()
        row = self._buffer[self._size]
        row["pc"] = pc
        row["opclass"] = int(opclass)
        row["src1"] = src1
        row["src2"] = src2
        row["dst"] = dst
        row["mem_addr"] = mem_addr
        row["taken"] = int(taken)
        row["target"] = target
        self._size += 1

    # -- typed helpers ---------------------------------------------------------

    def load(self, pc: int, dst: int, addr_reg: int, mem_addr: int) -> None:
        """Append a load: ``dst <- mem[mem_addr]`` (address from addr_reg)."""
        self.append(pc, OpClass.LOAD, src1=addr_reg, dst=dst, mem_addr=mem_addr)

    def store(self, pc: int, value_reg: int, addr_reg: int, mem_addr: int) -> None:
        """Append a store: ``mem[mem_addr] <- value_reg``."""
        self.append(
            pc, OpClass.STORE, src1=value_reg, src2=addr_reg, mem_addr=mem_addr
        )

    def branch(
        self, pc: int, cond_reg: int, taken: bool, target: int
    ) -> None:
        """Append a conditional branch testing ``cond_reg``."""
        self.append(
            pc, OpClass.BRANCH, src1=cond_reg, taken=taken, target=target
        )

    def jump(self, pc: int, target: int) -> None:
        """Append an unconditional (always-taken) control transfer."""
        self.append(pc, OpClass.BRANCH, taken=True, target=target)

    def alu(self, pc: int, dst: int, src1: int = NO_REG, src2: int = NO_REG) -> None:
        """Append an integer ALU operation."""
        self.append(pc, OpClass.INT_ALU, src1=src1, src2=src2, dst=dst)

    def mul(self, pc: int, dst: int, src1: int, src2: int) -> None:
        """Append an integer multiply."""
        self.append(pc, OpClass.INT_MUL, src1=src1, src2=src2, dst=dst)

    def fp(self, pc: int, dst: int, src1: int = NO_REG, src2: int = NO_REG) -> None:
        """Append a floating-point operation."""
        self.append(pc, OpClass.FP, src1=src1, src2=src2, dst=dst)

    def nop(self, pc: int) -> None:
        """Append a no-op."""
        self.append(pc, OpClass.NOP)

    # -- finalization ------------------------------------------------------------

    def build(self) -> Trace:
        """Finalize into an immutable :class:`Trace`.

        The builder may continue to be used after calling ``build``; the
        returned trace holds a copy of the accumulated records.
        """
        return Trace(self._buffer[: self._size].copy(), name=self.name)
