"""Trace slicing and sampling utilities.

Workload characterization studies frequently operate on trace prefixes,
periodic samples, or fixed-size windows (e.g. SimPoint-style interval
analysis).  These helpers produce new :class:`~repro.trace.Trace` objects
and never mutate their input.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import TraceError
from .trace import Trace


def head(trace: Trace, count: int) -> Trace:
    """The first ``count`` instructions (all of them if shorter)."""
    if count < 0:
        raise TraceError("count must be non-negative")
    return Trace(trace.data[:count].copy(), name=trace.name)


def sample_interval(trace: Trace, period: int, length: int) -> Trace:
    """Periodic interval sampling.

    Keeps ``length`` consecutive instructions out of every ``period``
    (the classic sampled-simulation pattern).

    Raises:
        TraceError: if ``period < length`` or either is non-positive.
    """
    if period <= 0 or length <= 0:
        raise TraceError("period and length must be positive")
    if period < length:
        raise TraceError("period must be >= sample length")
    offsets = np.arange(len(trace))
    keep = (offsets % period) < length
    return Trace(trace.data[keep].copy(), name=trace.name)


def sample_random(trace: Trace, fraction: float, seed: int = 0) -> Trace:
    """Uniform random per-instruction sampling (for quick estimates).

    Note that random sampling destroys sequential structure; analyzers
    that depend on adjacency (strides, ILP, PPM) should not be run on
    randomly sampled traces.

    Raises:
        TraceError: if ``fraction`` is outside ``(0, 1]``.
    """
    if not 0.0 < fraction <= 1.0:
        raise TraceError("fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    keep = rng.random(len(trace)) < fraction
    return Trace(trace.data[keep].copy(), name=trace.name)


def split_windows(trace: Trace, window: int, drop_last: bool = True) -> List[Trace]:
    """Split into consecutive fixed-size windows.

    Args:
        window: instructions per window.
        drop_last: when True (default) a trailing partial window is
            discarded; otherwise it is returned as a shorter trace.

    Raises:
        TraceError: if ``window`` is non-positive.
    """
    if window <= 0:
        raise TraceError("window must be positive")
    windows = []
    for start in range(0, len(trace), window):
        chunk = trace.data[start : start + window]
        if len(chunk) < window and drop_last:
            break
        windows.append(Trace(chunk.copy(), name=f"{trace.name}[{start}]"))
    return windows
