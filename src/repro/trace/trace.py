"""Columnar trace container.

A :class:`Trace` wraps a numpy structured array of dynamic instruction
records (dtype :data:`repro.isa.TRACE_DTYPE`).  All MICA analyzers and
microarchitecture simulators operate on this container.  The wrapper adds
convenient column views, class masks, and cheap derived streams (load
addresses, branch outcomes) that several analyzers share.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import TraceError
from ..isa import TRACE_DTYPE, InstructionRecord, OpClass, record_from_row


class Trace:
    """An immutable dynamic instruction trace.

    Args:
        data: structured array with dtype :data:`TRACE_DTYPE`.
        name: optional label (usually ``suite/program/input``).

    The underlying array is marked read-only; build modified traces through
    :class:`repro.trace.TraceBuilder` or the filter utilities.
    """

    def __init__(self, data: np.ndarray, name: str = ""):
        if data.dtype != TRACE_DTYPE:
            raise TraceError(
                f"trace data must have TRACE_DTYPE, got {data.dtype}"
            )
        if data.ndim != 1:
            raise TraceError("trace data must be one-dimensional")
        self._data = data
        self._data.setflags(write=False)
        self.name = name

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[InstructionRecord]:
        for row in self._data:
            yield record_from_row(row)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self._data[index].copy(), name=self.name)
        return record_from_row(self._data[int(index)])

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Trace{label} n={len(self)}>"

    # -- column access -------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The raw structured array (read-only)."""
        return self._data

    @property
    def pc(self) -> np.ndarray:
        return self._data["pc"]

    @property
    def opclass(self) -> np.ndarray:
        return self._data["opclass"]

    @property
    def src1(self) -> np.ndarray:
        return self._data["src1"]

    @property
    def src2(self) -> np.ndarray:
        return self._data["src2"]

    @property
    def dst(self) -> np.ndarray:
        return self._data["dst"]

    @property
    def mem_addr(self) -> np.ndarray:
        return self._data["mem_addr"]

    @property
    def taken(self) -> np.ndarray:
        return self._data["taken"]

    @property
    def target(self) -> np.ndarray:
        return self._data["target"]

    # -- class masks ----------------------------------------------------------

    def mask(self, opclass: OpClass) -> np.ndarray:
        """Boolean mask selecting instructions of one class."""
        return self.opclass == int(opclass)

    @property
    def load_mask(self) -> np.ndarray:
        return self.mask(OpClass.LOAD)

    @property
    def store_mask(self) -> np.ndarray:
        return self.mask(OpClass.STORE)

    @property
    def memory_mask(self) -> np.ndarray:
        return self.load_mask | self.store_mask

    @property
    def branch_mask(self) -> np.ndarray:
        return self.mask(OpClass.BRANCH)

    # -- derived streams -------------------------------------------------------

    @property
    def load_addresses(self) -> np.ndarray:
        """Effective addresses of loads, in program order."""
        return self.mem_addr[self.load_mask]

    @property
    def store_addresses(self) -> np.ndarray:
        """Effective addresses of stores, in program order."""
        return self.mem_addr[self.store_mask]

    @property
    def branch_pcs(self) -> np.ndarray:
        """PCs of control transfers, in program order."""
        return self.pc[self.branch_mask]

    @property
    def branch_outcomes(self) -> np.ndarray:
        """Taken/not-taken outcomes of control transfers, in program order."""
        return self.taken[self.branch_mask].astype(bool)

    def class_counts(self) -> "dict[OpClass, int]":
        """Dynamic instruction count per class."""
        counts = np.bincount(self.opclass, minlength=len(OpClass))
        return {op: int(counts[int(op)]) for op in OpClass}

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def from_records(cls, records, name: str = "") -> "Trace":
        """Build a trace from an iterable of :class:`InstructionRecord`."""
        rows = [record.to_row() for record in records]
        data = np.array(rows, dtype=TRACE_DTYPE)
        return cls(data, name=name)

    @classmethod
    def empty(cls, name: str = "") -> "Trace":
        """A zero-length trace."""
        return cls(np.empty(0, dtype=TRACE_DTYPE), name=name)

    def concat(self, other: "Trace") -> "Trace":
        """Concatenate two traces (self first)."""
        joined = np.concatenate([self._data, other._data])
        return Trace(joined, name=self.name or other.name)
