"""Columnar trace container.

A :class:`Trace` wraps a numpy structured array of dynamic instruction
records (dtype :data:`repro.isa.TRACE_DTYPE`).  All MICA analyzers and
microarchitecture simulators operate on this container.  The wrapper adds
convenient column views, class masks, and cheap derived streams (load
addresses, branch outcomes) that several analyzers share.

The underlying array is immutable, so every column view, class mask and
derived stream is computed once and memoized: analyzers that read the
same column repeatedly (or mix mask-derived streams) never re-slice the
structured array.  Bulk record iteration goes through
:meth:`Trace.records`, which converts each column to Python scalars once
and skips per-row re-validation of data that was validated when the
trace was built.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator

import numpy as np

from ..errors import TraceError
from ..isa import (
    TRACE_DTYPE,
    InstructionRecord,
    OpClass,
    record_from_row,
    unchecked_record,
)


class Trace:
    """An immutable dynamic instruction trace.

    Args:
        data: structured array with dtype :data:`TRACE_DTYPE`.
        name: optional label (usually ``suite/program/input``).

    The underlying array is marked read-only; build modified traces through
    :class:`repro.trace.TraceBuilder` or the filter utilities.
    """

    def __init__(self, data: np.ndarray, name: str = ""):
        if data.dtype != TRACE_DTYPE:
            raise TraceError(
                f"trace data must have TRACE_DTYPE, got {data.dtype}"
            )
        if data.ndim != 1:
            raise TraceError("trace data must be one-dimensional")
        self._data = data
        self._data.setflags(write=False)
        self.name = name
        # Memoized column views / masks / derived streams; safe because
        # the backing array is read-only for the trace's lifetime.
        self._derived: Dict[str, np.ndarray] = {}
        self._digest: "str | None" = None

    def _cached(self, key: str, compute) -> np.ndarray:
        array = self._derived.get(key)
        if array is None:
            array = compute()
            self._derived[key] = array
        return array

    def _column(self, field: str) -> np.ndarray:
        return self._cached(field, lambda: self._data[field])

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[InstructionRecord]:
        return self.records()

    #: Rows converted to Python scalars per batch during iteration —
    #: large enough to amortize the columnar tolist(), small enough
    #: that early-exiting consumers never materialize a whole trace.
    _RECORD_CHUNK = 8192

    def records(self) -> Iterator[InstructionRecord]:
        """Iterate :class:`InstructionRecord` views of every row.

        The bulk path: columns are converted to Python scalars one
        chunk at a time and records are built without per-row
        validation (the array was validated on construction), which is
        several times faster than row-wise structured-array access.
        """
        for start in range(0, len(self._data), self._RECORD_CHUNK):
            stop = start + self._RECORD_CHUNK
            opclasses = [
                OpClass(value)
                for value in self.opclass[start:stop].tolist()
            ]
            rows = zip(
                self.pc[start:stop].tolist(),
                opclasses,
                self.src1[start:stop].tolist(),
                self.src2[start:stop].tolist(),
                self.dst[start:stop].tolist(),
                self.mem_addr[start:stop].tolist(),
                self.taken[start:stop].tolist(),
                self.target[start:stop].tolist(),
            )
            for pc, opclass, src1, src2, dst, mem_addr, taken, target in rows:
                yield unchecked_record(
                    pc, opclass, src1, src2, dst, mem_addr, bool(taken),
                    target,
                )

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self._data[index], name=self.name)
        return record_from_row(self._data[int(index)])

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Trace{label} n={len(self)}>"

    # -- column access -------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The raw structured array (read-only)."""
        return self._data

    @property
    def pc(self) -> np.ndarray:
        return self._column("pc")

    @property
    def opclass(self) -> np.ndarray:
        return self._column("opclass")

    @property
    def src1(self) -> np.ndarray:
        return self._column("src1")

    @property
    def src2(self) -> np.ndarray:
        return self._column("src2")

    @property
    def dst(self) -> np.ndarray:
        return self._column("dst")

    @property
    def mem_addr(self) -> np.ndarray:
        return self._column("mem_addr")

    @property
    def taken(self) -> np.ndarray:
        return self._column("taken")

    @property
    def target(self) -> np.ndarray:
        return self._column("target")

    # -- class masks ----------------------------------------------------------

    def mask(self, opclass: OpClass) -> np.ndarray:
        """Boolean mask selecting instructions of one class."""
        return self._cached(
            f"mask:{int(opclass)}", lambda: self.opclass == int(opclass)
        )

    @property
    def load_mask(self) -> np.ndarray:
        return self.mask(OpClass.LOAD)

    @property
    def store_mask(self) -> np.ndarray:
        return self.mask(OpClass.STORE)

    @property
    def memory_mask(self) -> np.ndarray:
        return self._cached(
            "memory_mask", lambda: self.load_mask | self.store_mask
        )

    @property
    def branch_mask(self) -> np.ndarray:
        return self.mask(OpClass.BRANCH)

    # -- derived streams -------------------------------------------------------

    @property
    def load_addresses(self) -> np.ndarray:
        """Effective addresses of loads, in program order."""
        return self._cached(
            "load_addresses", lambda: self.mem_addr[self.load_mask]
        )

    @property
    def store_addresses(self) -> np.ndarray:
        """Effective addresses of stores, in program order."""
        return self._cached(
            "store_addresses", lambda: self.mem_addr[self.store_mask]
        )

    @property
    def branch_pcs(self) -> np.ndarray:
        """PCs of control transfers, in program order."""
        return self._cached("branch_pcs", lambda: self.pc[self.branch_mask])

    @property
    def branch_outcomes(self) -> np.ndarray:
        """Taken/not-taken outcomes of control transfers, in program order."""
        return self._cached(
            "branch_outcomes",
            lambda: self.taken[self.branch_mask].astype(bool),
        )

    def content_digest(self) -> str:
        """Short content hash of the instruction stream (name-blind).

        Memoized (the backing array is immutable).  Used by analysis
        results that must later verify they are being applied to the
        trace they were computed from — e.g.
        :class:`repro.phases.PhaseResult` — where equal length alone
        would let a wrong trace pass silently.
        """
        if self._digest is None:
            hasher = hashlib.sha256()
            hasher.update(self._data.tobytes())
            self._digest = hasher.hexdigest()[:16]
        return self._digest

    def class_counts(self) -> "dict[OpClass, int]":
        """Dynamic instruction count per class."""
        counts = np.bincount(self.opclass, minlength=len(OpClass))
        return {op: int(counts[int(op)]) for op in OpClass}

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def from_records(cls, records, name: str = "") -> "Trace":
        """Build a trace from an iterable of :class:`InstructionRecord`."""
        rows = [record.to_row() for record in records]
        data = np.array(rows, dtype=TRACE_DTYPE)
        return cls(data, name=name)

    @classmethod
    def empty(cls, name: str = "") -> "Trace":
        """A zero-length trace."""
        return cls(np.empty(0, dtype=TRACE_DTYPE), name=name)

    def concat(self, other: "Trace") -> "Trace":
        """Concatenate two traces (self first)."""
        joined = np.concatenate([self._data, other._data])
        return Trace(joined, name=self.name or other.name)
