"""Chunked trace sources: iterate shards without materializing a trace.

A :class:`TraceSource` is the out-of-core counterpart of
:class:`~repro.trace.Trace`: it knows the trace's length and can yield
contiguous *shards* (``(start, Trace)`` pairs) one at a time, so the
shard-mergeable characterization engine (:mod:`repro.mica.shard`) can
stream a trace that is much larger than RAM.  Two sources are provided:

* :class:`MemoryTraceSource` — wraps an in-memory :class:`Trace`
  (shards are cheap slices); the degenerate case used whenever the
  trace already fits.
* :class:`MappedTraceSource` — memory-maps an uncompressed binary
  ``.mtf`` file (:mod:`repro.trace.io`) and copies out one shard of
  rows at a time, so peak resident trace memory is bounded by the
  shard size, never the trace length.

Both compute the trace's content digest and cache fingerprint
*incrementally* (shard-by-shard sha256 updates over the same byte
stream the in-memory paths hash), pinned equal to
:meth:`Trace.content_digest` and :func:`repro.perf.trace_fingerprint`
by ``tests/test_shard_merge_equivalence.py``.
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import TraceError, TraceFormatError
from ..isa import TRACE_DTYPE
from .trace import Trace
from .io import _HEADER, MAGIC

PathLike = Union[str, "os.PathLike[str]"]

#: Rows hashed per digest update; bounds digest memory for huge shards.
_DIGEST_CHUNK_ROWS = 1 << 16


def shard_bounds(
    n: int,
    shards: "Optional[int]" = None,
    shard_size: "Optional[int]" = None,
) -> "List[Tuple[int, int]]":
    """Contiguous ``(start, end)`` shard bounds covering ``[0, n)``.

    Exactly one of ``shards`` (a target shard count; the trace is split
    into that many near-equal contiguous parts, fewer when the trace is
    shorter than the count) and ``shard_size`` (a fixed number of rows
    per shard, the last one partial) must be given.

    Raises:
        TraceError: on a non-positive trace length, both or neither
            argument given, or a non-positive count/size.
    """
    if n <= 0:
        raise TraceError(f"cannot shard an empty trace (length {n})")
    if (shards is None) == (shard_size is None):
        raise TraceError("give exactly one of shards= and shard_size=")
    bounds: "List[Tuple[int, int]]" = []
    if shards is not None:
        if shards < 1:
            raise TraceError(f"shards must be >= 1, got {shards}")
        count = min(int(shards), n)
        base, extra = divmod(n, count)
        start = 0
        for index in range(count):
            end = start + base + (1 if index < extra else 0)
            bounds.append((start, end))
            start = end
    else:
        if shard_size < 1:
            raise TraceError(
                f"shard_size must be >= 1, got {shard_size}"
            )
        for start in range(0, n, int(shard_size)):
            bounds.append((start, min(start + int(shard_size), n)))
    return bounds


class TraceSource:
    """A length-known stream of contiguous trace shards.

    Subclasses implement :meth:`_rows` (copy rows ``[start, end)`` out
    as a structured array) and expose ``name``; everything else —
    shard iteration, incremental digests, cache fingerprints — is
    shared.
    """

    name: str = ""

    def __len__(self) -> int:
        raise NotImplementedError

    def _rows(self, start: int, end: int) -> np.ndarray:
        raise NotImplementedError

    def shard(self, start: int, end: int) -> Trace:
        """One contiguous shard as a :class:`Trace`."""
        n = len(self)
        if not 0 <= start < end <= n:
            raise TraceError(
                f"bad shard bounds [{start}, {end}) for length {n}"
            )
        return Trace(self._rows(start, end), name=self.name)

    def iter_shards(
        self, bounds: "Sequence[Tuple[int, int]]"
    ) -> "Iterator[Tuple[int, Trace]]":
        """Yield ``(start, shard)`` for each requested bound, in order.

        Only one shard's rows are resident at a time (the previous
        shard is released as soon as the consumer drops it).
        """
        for start, end in bounds:
            yield start, self.shard(start, end)

    def _digest_update(self, hasher) -> None:
        """Feed the full row byte stream into ``hasher``, chunk-wise."""
        n = len(self)
        for start in range(0, n, _DIGEST_CHUNK_ROWS):
            end = min(start + _DIGEST_CHUNK_ROWS, n)
            hasher.update(self._rows(start, end).tobytes())

    def content_digest(self) -> str:
        """Streaming counterpart of :meth:`Trace.content_digest`.

        Computed incrementally (one bounded chunk of rows resident at a
        time) over the exact byte stream the in-memory digest hashes,
        so the two are always equal for the same rows.
        """
        hasher = hashlib.sha256()
        self._digest_update(hasher)
        return hasher.hexdigest()[:16]

    def fingerprint(self) -> str:
        """Streaming counterpart of :func:`repro.perf.trace_fingerprint`.

        Hashes the dtype string then the row bytes chunk-wise — the
        same stream :func:`~repro.perf.trace_fingerprint` hashes in one
        shot — so a chunked source keys the content-addressed caches
        without ever materializing the full columns.
        """
        hasher = hashlib.sha256()
        hasher.update(str(TRACE_DTYPE).encode())
        self._digest_update(hasher)
        return hasher.hexdigest()[:32]


class MemoryTraceSource(TraceSource):
    """A :class:`TraceSource` over an in-memory :class:`Trace`."""

    def __init__(self, trace: Trace):
        self._trace = trace
        self.name = trace.name

    def __len__(self) -> int:
        return len(self._trace)

    def _rows(self, start: int, end: int) -> np.ndarray:
        return self._trace.data[start:end]

    def shard(self, start: int, end: int) -> Trace:
        n = len(self)
        if not 0 <= start < end <= n:
            raise TraceError(
                f"bad shard bounds [{start}, {end}) for length {n}"
            )
        # Slicing a Trace shares the backing array — no copy needed.
        return self._trace[start:end]


class MappedTraceSource(TraceSource):
    """A :class:`TraceSource` over an uncompressed binary ``.mtf`` file.

    The file is memory-mapped read-only; each shard copies just its own
    rows out of the map, so peak resident trace memory is bounded by
    the shard size rather than the trace length.  Gzipped traces
    (``.gz``) cannot be mapped — decompress first or read them whole
    with :func:`repro.trace.read_trace`.

    Raises:
        TraceFormatError: on a gzipped path, bad magic, or a payload
            shorter than the header's row count promises.
    """

    def __init__(self, path: PathLike, name: str = ""):
        self.path = str(path)
        if self.path.endswith(".gz"):
            raise TraceFormatError(
                f"{path}: gzipped traces cannot be memory-mapped"
            )
        with open(self.path, "rb") as handle:
            header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError(f"{path}: truncated header")
        magic, count = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        payload = os.path.getsize(self.path) - _HEADER.size
        expected = count * TRACE_DTYPE.itemsize
        if payload < expected:
            raise TraceFormatError(
                f"{path}: expected {expected} payload bytes, "
                f"found {payload}"
            )
        self._count = int(count)
        self.name = name or self.path

    def __len__(self) -> int:
        return self._count

    def _rows(self, start: int, end: int) -> np.ndarray:
        # A fresh map per read keeps the source picklable (workers
        # re-open the file themselves) and lets the OS drop pages as
        # soon as the copy is made.
        mapped = np.memmap(
            self.path, dtype=TRACE_DTYPE, mode="r",
            offset=_HEADER.size, shape=(self._count,),
        )
        try:
            return np.array(mapped[start:end])
        finally:
            del mapped


def as_trace_source(
    trace_or_source: "Trace | TraceSource",
) -> TraceSource:
    """Coerce a :class:`Trace` or source to a :class:`TraceSource`."""
    if isinstance(trace_or_source, TraceSource):
        return trace_or_source
    return MemoryTraceSource(trace_or_source)


def open_trace_source(path: PathLike, name: str = "") -> TraceSource:
    """A chunked source over an on-disk binary ``.mtf`` trace."""
    return MappedTraceSource(path, name=name)
