"""Cheap summary statistics over traces.

These are *descriptive* statistics for humans and sanity checks — the
full 47-characteristic MICA vector lives in :mod:`repro.mica`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..isa import OpClass
from .trace import Trace


@dataclass(frozen=True)
class TraceSummary:
    """Descriptive statistics of a dynamic instruction trace."""

    name: str
    instruction_count: int
    load_count: int
    store_count: int
    branch_count: int
    int_alu_count: int
    int_mul_count: int
    fp_count: int
    nop_count: int
    unique_pcs: int
    unique_data_addresses: int
    branch_taken_fraction: float

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions that access memory."""
        if self.instruction_count == 0:
            return 0.0
        return (self.load_count + self.store_count) / self.instruction_count

    @property
    def branch_fraction(self) -> float:
        """Fraction of instructions that are control transfers."""
        if self.instruction_count == 0:
            return 0.0
        return self.branch_count / self.instruction_count

    def format(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [
            f"trace {self.name or '<unnamed>'}",
            f"  instructions        {self.instruction_count:>12,}",
            f"  loads               {self.load_count:>12,}",
            f"  stores              {self.store_count:>12,}",
            f"  branches            {self.branch_count:>12,}"
            f"  (taken {self.branch_taken_fraction:.1%})",
            f"  int alu             {self.int_alu_count:>12,}",
            f"  int mul             {self.int_mul_count:>12,}",
            f"  fp                  {self.fp_count:>12,}",
            f"  nops                {self.nop_count:>12,}",
            f"  unique PCs          {self.unique_pcs:>12,}",
            f"  unique data addrs   {self.unique_data_addresses:>12,}",
        ]
        return "\n".join(lines)


def summarize(trace: Trace) -> TraceSummary:
    """Compute a :class:`TraceSummary` for a trace."""
    counts = trace.class_counts()
    outcomes = trace.branch_outcomes
    taken_fraction = float(outcomes.mean()) if len(outcomes) else 0.0
    mem_addrs = trace.mem_addr[trace.memory_mask]
    return TraceSummary(
        name=trace.name,
        instruction_count=len(trace),
        load_count=counts[OpClass.LOAD],
        store_count=counts[OpClass.STORE],
        branch_count=counts[OpClass.BRANCH],
        int_alu_count=counts[OpClass.INT_ALU],
        int_mul_count=counts[OpClass.INT_MUL],
        fp_count=counts[OpClass.FP],
        nop_count=counts[OpClass.NOP],
        unique_pcs=int(len(np.unique(trace.pc))),
        unique_data_addresses=int(len(np.unique(mem_addrs))),
        branch_taken_fraction=taken_fraction,
    )
