"""Dynamic instruction trace substrate.

This package is the reproduction's stand-in for ATOM instrumentation
output: a columnar trace container (:class:`Trace`), an incremental
builder, an on-disk format (``.mtf``) so externally produced traces can be
consumed, slicing/sampling utilities, summary statistics and invariant
validation.
"""

from .trace import Trace
from .builder import TraceBuilder
from .io import read_trace, write_trace, read_trace_text, write_trace_text
from .filters import head, sample_interval, sample_random, split_windows
from .source import (
    MappedTraceSource,
    MemoryTraceSource,
    TraceSource,
    as_trace_source,
    open_trace_source,
    shard_bounds,
)
from .stats import TraceSummary, summarize
from .validate import validate_trace

__all__ = [
    "Trace",
    "TraceBuilder",
    "TraceSource",
    "MemoryTraceSource",
    "MappedTraceSource",
    "as_trace_source",
    "open_trace_source",
    "shard_bounds",
    "read_trace",
    "write_trace",
    "read_trace_text",
    "write_trace_text",
    "head",
    "sample_interval",
    "sample_random",
    "split_windows",
    "TraceSummary",
    "summarize",
    "validate_trace",
]
