"""Trace invariant validation.

External traces (read through :mod:`repro.trace.io`) come from tooling
the library does not control, so analyzers assume traces have passed
:func:`validate_trace` once at the boundary rather than re-checking
invariants per record.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from ..isa import NO_REG, OpClass
from ..isa.registers import TOTAL_REGS
from .trace import Trace


def validate_trace(trace: Trace) -> None:
    """Check all trace invariants, raising :class:`TraceError` on the
    first violation.

    Invariants:

    * every opclass value names a member of :class:`OpClass`;
    * register fields are either valid flat indices or :data:`NO_REG`;
    * loads and stores carry a nonzero memory address;
    * non-memory instructions carry a zero memory address;
    * only control transfers are marked taken;
    * taken control transfers carry a nonzero target.
    """
    data = trace.data
    if len(data) == 0:
        return

    valid_classes = np.array([int(op) for op in OpClass], dtype=np.uint8)
    if not np.isin(data["opclass"], valid_classes).all():
        bad = data["opclass"][~np.isin(data["opclass"], valid_classes)][0]
        raise TraceError(f"invalid opclass value: {int(bad)}")

    for field in ("src1", "src2", "dst"):
        column = data[field]
        bad_mask = (column != NO_REG) & (column >= TOTAL_REGS)
        if bad_mask.any():
            raise TraceError(
                f"invalid {field} register index: {int(column[bad_mask][0])}"
            )

    memory_mask = np.isin(
        data["opclass"], [int(OpClass.LOAD), int(OpClass.STORE)]
    )
    if (data["mem_addr"][memory_mask] == 0).any():
        raise TraceError("memory instruction with zero address")
    if (data["mem_addr"][~memory_mask] != 0).any():
        raise TraceError("non-memory instruction with nonzero address")

    branch_mask = data["opclass"] == int(OpClass.BRANCH)
    if (data["taken"][~branch_mask] != 0).any():
        raise TraceError("non-branch instruction marked taken")
    taken_branches = branch_mask & (data["taken"] != 0)
    if (data["target"][taken_branches] == 0).any():
        raise TraceError("taken branch with zero target")
