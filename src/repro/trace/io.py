"""On-disk trace formats.

Two formats are supported so that traces produced by *external*
instrumentation tooling can be consumed by the MICA analyzers (the
reproduction's analogue of pointing MICA at ATOM output):

* **Binary ``.mtf``** ("MICA trace format"): a small header followed by
  the raw columnar records.  This is the fast path.
* **Text**: one instruction per line, whitespace-separated fields — easy
  to emit from any tool or to write by hand in tests::

      <pc-hex> <class> [dst|-] [src1|-] [src2|-] [mem-addr-hex] [T|N <target-hex>]

  Fields after the class are optional per class: memory instructions
  carry an address, branches carry an outcome and target.
"""

from __future__ import annotations

import gzip
import io
import struct
from typing import TextIO, Union

import numpy as np

from ..errors import TraceFormatError
from ..isa import NO_REG, OpClass, TRACE_DTYPE
from .trace import Trace

#: Magic bytes identifying a binary trace file.
MAGIC = b"MTF1"

_HEADER = struct.Struct("<4sQ")

PathLike = Union[str, "os.PathLike[str]"]


def _open_binary(path: PathLike, mode: str):
    """Open a binary trace file, transparently gzipped for ``.gz``."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode)
    return open(path, mode)


def write_trace(trace: Trace, path: PathLike) -> None:
    """Write a trace in binary ``.mtf`` format.

    Paths ending in ``.gz`` are gzip-compressed transparently (traces
    compress well: repeated PCs and structured addresses).
    """
    with _open_binary(path, "wb") as handle:
        handle.write(_HEADER.pack(MAGIC, len(trace)))
        handle.write(trace.data.tobytes())


def read_trace(path: PathLike, name: str = "") -> Trace:
    """Read a binary ``.mtf`` trace file (``.gz`` accepted).

    Raises:
        TraceFormatError: on bad magic, truncated data, or size mismatch.
    """
    with _open_binary(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError(f"{path}: truncated header")
        magic, count = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        payload = handle.read()
    expected = count * TRACE_DTYPE.itemsize
    if len(payload) != expected:
        raise TraceFormatError(
            f"{path}: expected {expected} payload bytes, found {len(payload)}"
        )
    data = np.frombuffer(payload, dtype=TRACE_DTYPE).copy()
    return Trace(data, name=name or str(path))


def _format_reg(index: int) -> str:
    return "-" if index == NO_REG else str(index)


def _parse_reg(token: str, line_no: int) -> int:
    if token == "-":
        return NO_REG
    try:
        return int(token)
    except ValueError:
        raise TraceFormatError(f"line {line_no}: bad register {token!r}") from None


def write_trace_text(trace: Trace, target: Union[PathLike, TextIO]) -> None:
    """Write a trace in the line-oriented text format."""
    if hasattr(target, "write"):
        _write_text(trace, target)  # type: ignore[arg-type]
    else:
        with open(target, "w", encoding="ascii") as handle:
            _write_text(trace, handle)


def _write_text(trace: Trace, handle: TextIO) -> None:
    for row in trace.data:
        opclass = OpClass(int(row["opclass"]))
        fields = [
            f"{int(row['pc']):#x}",
            opclass.short_name,
            _format_reg(int(row["dst"])),
            _format_reg(int(row["src1"])),
            _format_reg(int(row["src2"])),
        ]
        if opclass.is_memory:
            fields.append(f"{int(row['mem_addr']):#x}")
        if opclass.is_control:
            fields.append("T" if row["taken"] else "N")
            fields.append(f"{int(row['target']):#x}")
        handle.write(" ".join(fields) + "\n")


def read_trace_text(source: Union[PathLike, TextIO], name: str = "") -> Trace:
    """Read a trace in the line-oriented text format.

    Blank lines and lines starting with ``#`` are ignored.

    Raises:
        TraceFormatError: on any malformed line.
    """
    if hasattr(source, "read"):
        return _read_text(source, name)  # type: ignore[arg-type]
    with open(source, "r", encoding="ascii") as handle:
        return _read_text(handle, name or str(source))


def _read_text(handle: TextIO, name: str) -> Trace:
    rows = []
    for line_no, line in enumerate(handle, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        if len(tokens) < 5:
            raise TraceFormatError(f"line {line_no}: too few fields")
        try:
            pc = int(tokens[0], 16)
        except ValueError:
            raise TraceFormatError(f"line {line_no}: bad pc {tokens[0]!r}") from None
        try:
            opclass = OpClass.from_short_name(tokens[1])
        except KeyError:
            raise TraceFormatError(
                f"line {line_no}: unknown class {tokens[1]!r}"
            ) from None
        dst = _parse_reg(tokens[2], line_no)
        src1 = _parse_reg(tokens[3], line_no)
        src2 = _parse_reg(tokens[4], line_no)
        cursor = 5
        mem_addr = 0
        taken = 0
        target = 0
        if opclass.is_memory:
            if cursor >= len(tokens):
                raise TraceFormatError(f"line {line_no}: missing memory address")
            try:
                mem_addr = int(tokens[cursor], 16)
            except ValueError:
                raise TraceFormatError(
                    f"line {line_no}: bad address {tokens[cursor]!r}"
                ) from None
            cursor += 1
        if opclass.is_control:
            if cursor + 1 >= len(tokens):
                raise TraceFormatError(f"line {line_no}: missing branch outcome")
            outcome = tokens[cursor]
            if outcome not in ("T", "N"):
                raise TraceFormatError(
                    f"line {line_no}: bad outcome {outcome!r} (expected T or N)"
                )
            taken = int(outcome == "T")
            try:
                target = int(tokens[cursor + 1], 16)
            except ValueError:
                raise TraceFormatError(
                    f"line {line_no}: bad target {tokens[cursor + 1]!r}"
                ) from None
            cursor += 2
        if cursor != len(tokens):
            raise TraceFormatError(f"line {line_no}: trailing fields")
        rows.append((pc, int(opclass), src1, src2, dst, mem_addr, taken, target))
    data = np.array(rows, dtype=TRACE_DTYPE) if rows else np.empty(0, TRACE_DTYPE)
    return Trace(data, name=name)


def trace_from_text(text: str, name: str = "") -> Trace:
    """Parse a trace from an in-memory text-format string (test helper)."""
    return _read_text(io.StringIO(text), name)
