"""Global configuration defaults for the repro library.

These constants centralize the handful of magic numbers that appear
throughout the paper's methodology (block/page sizes, stride thresholds,
ILP window sizes) as well as reproduction-level knobs (trace lengths,
seeds).  Experiments read them through :class:`ReproConfig` so individual
runs can override values without mutating module state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from .errors import ConfigurationError

#: Cache-block granularity used for working-set analysis (paper: 32 bytes).
BLOCK_BYTES = 32

#: Page granularity used for working-set analysis (paper: 4 KB).
PAGE_BYTES = 4096

#: Idealized out-of-order window sizes for the ILP characteristics
#: (paper Table II, characteristics 7-10).
ILP_WINDOW_SIZES: Tuple[int, ...] = (32, 64, 128, 256)

#: Cumulative register-dependency-distance thresholds
#: (paper Table II, characteristics 13-19).
REG_DEP_THRESHOLDS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

#: Cumulative data-stride thresholds (paper Table II, characteristics
#: 24-43; applied to local/global x load/store streams).
STRIDE_THRESHOLDS: Tuple[int, ...] = (0, 8, 64, 512, 4096)

#: Classification threshold used throughout section IV: a distance is
#: "large" when it exceeds this fraction of the maximum observed distance.
SIMILARITY_THRESHOLD_FRACTION = 0.20

#: Range of K values explored for k-means clustering (paper section VI).
KMEANS_K_RANGE: Tuple[int, int] = (1, 70)

#: Fraction of the maximum BIC score that the chosen K must reach
#: (paper section VI: "within 90% of the maximum score").
BIC_SCORE_FRACTION = 0.90

#: Default number of dynamic instructions generated per benchmark when
#: building the full experiment dataset.
DEFAULT_TRACE_LENGTH = 100_000

#: Shorter trace length for unit tests and smoke runs.
SMOKE_TRACE_LENGTH = 20_000

#: Base seed from which per-benchmark seeds are derived.
GLOBAL_SEED = 20061027  # IISWC 2006 conference date.


@dataclass(frozen=True)
class ReproConfig:
    """Run-level configuration for dataset construction and experiments.

    Instances are immutable; derive variants with :meth:`with_overrides`.
    """

    trace_length: int = DEFAULT_TRACE_LENGTH
    seed: int = GLOBAL_SEED
    block_bytes: int = BLOCK_BYTES
    page_bytes: int = PAGE_BYTES
    ilp_window_sizes: Tuple[int, ...] = ILP_WINDOW_SIZES
    reg_dep_thresholds: Tuple[int, ...] = REG_DEP_THRESHOLDS
    stride_thresholds: Tuple[int, ...] = STRIDE_THRESHOLDS
    similarity_threshold: float = SIMILARITY_THRESHOLD_FRACTION
    kmeans_k_range: Tuple[int, int] = KMEANS_K_RANGE
    bic_score_fraction: float = BIC_SCORE_FRACTION
    ppm_max_order: int = 4
    ga_generations: int = 60
    ga_population: int = 64
    ga_seed: int = 42

    def __post_init__(self) -> None:
        if self.trace_length <= 0:
            raise ConfigurationError("trace_length must be positive")
        if self.block_bytes <= 0 or self.block_bytes & (self.block_bytes - 1):
            raise ConfigurationError("block_bytes must be a positive power of two")
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise ConfigurationError("page_bytes must be a positive power of two")
        if not 0.0 < self.similarity_threshold < 1.0:
            raise ConfigurationError("similarity_threshold must be in (0, 1)")
        if not 0.0 < self.bic_score_fraction <= 1.0:
            raise ConfigurationError("bic_score_fraction must be in (0, 1]")
        lo, hi = self.kmeans_k_range
        if lo < 1 or hi < lo:
            raise ConfigurationError("kmeans_k_range must satisfy 1 <= lo <= hi")
        if self.ppm_max_order < 1:
            raise ConfigurationError("ppm_max_order must be >= 1")
        if self.ga_generations < 1 or self.ga_population < 2:
            raise ConfigurationError("GA needs >=1 generation and >=2 individuals")

    def with_overrides(self, **kwargs) -> "ReproConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def characterization_fingerprint(self) -> str:
        """Stable hex digest of the fields that shape a MICA vector.

        Two configs with the same fingerprint produce identical
        47-dimensional vectors for the same trace, so the digest (plus a
        trace content hash) keys the on-disk characterization cache in
        :mod:`repro.perf`.  Fields that only affect trace *generation*
        or downstream analyses (trace length, seeds, GA knobs) are
        deliberately excluded.
        """
        import hashlib

        payload = repr((
            self.block_bytes,
            self.page_bytes,
            tuple(self.ilp_window_sizes),
            tuple(self.reg_dep_thresholds),
            tuple(self.stride_thresholds),
            self.ppm_max_order,
        ))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


#: A conservative configuration for fast tests.
SMOKE_CONFIG = ReproConfig(
    trace_length=SMOKE_TRACE_LENGTH,
    ga_generations=15,
    ga_population=24,
)

DEFAULT_CONFIG = ReproConfig()
