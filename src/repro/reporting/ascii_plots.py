"""ASCII scatter and line plots for terminal experiment reports."""

from __future__ import annotations

from typing import Dict

import numpy as np


def _canvas(width: int, height: int) -> "list[list[str]]":
    return [[" "] * width for _ in range(height)]


def _render(
    canvas: "list[list[str]]",
    x_label: str,
    y_label: str,
    x_range: "tuple[float, float]",
    y_range: "tuple[float, float]",
) -> str:
    height = len(canvas)
    width = len(canvas[0])
    lines = [f"{y_label} ({y_range[1]:.3g} top, {y_range[0]:.3g} bottom)"]
    for row in canvas:
        lines.append("|" + "".join(row).rstrip())
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {x_range[0]:.3g} .. {x_range[1]:.3g}"
    )
    return "\n".join(lines)


def ascii_scatter(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 72,
    height: int = 24,
    marker: str = "*",
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 20000,
) -> str:
    """Scatter plot on a character canvas.

    Overlapping points escalate through ``. : * @`` density markers so
    dense regions remain readable.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or len(x) == 0:
        raise ValueError("scatter needs two equal-length non-empty vectors")
    if len(x) > max_points:
        step = len(x) // max_points + 1
        x = x[::step]
        y = y[::step]
    x_low, x_high = float(x.min()), float(x.max())
    y_low, y_high = float(y.min()), float(y.max())
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0
    counts = np.zeros((height, width), dtype=np.int64)
    cols = ((x - x_low) / x_span * (width - 1)).round().astype(int)
    rows = (height - 1 - (y - y_low) / y_span * (height - 1)).round().astype(int)
    np.add.at(counts, (rows, cols), 1)
    density_markers = [" ", ".", ":", marker, "@"]
    canvas = _canvas(width, height)
    if counts.max() > 0:
        levels = np.digitize(
            counts, [1, 2, 4, 8], right=False
        )  # 0..4 density buckets.
        for row in range(height):
            for col in range(width):
                canvas[row][col] = density_markers[levels[row, col]]
    return _render(canvas, x_label, y_label, (x_low, x_high), (y_low, y_high))


def ascii_lines(
    series: "Dict[str, tuple[np.ndarray, np.ndarray]]",
    width: int = 72,
    height: int = 24,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Overlayed line plots; each series is drawn with its own marker
    (first letter of its name) and listed in the legend."""
    if not series:
        raise ValueError("need at least one series")
    all_x = np.concatenate([np.asarray(x, float) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, float) for _, y in series.values()])
    x_low, x_high = float(all_x.min()), float(all_x.max())
    y_low, y_high = float(all_y.min()), float(all_y.max())
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0
    canvas = _canvas(width, height)
    legend = []
    used_markers = set()
    for name, (x, y) in series.items():
        marker = next(
            (ch for ch in name if ch.isalnum() and ch not in used_markers),
            "*",
        )
        used_markers.add(marker)
        legend.append(f"  {marker} = {name}")
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        order = np.argsort(x, kind="stable")
        x, y = x[order], y[order]
        # Dense resample along x for continuous-looking lines.
        if len(x) > 1:
            x_dense = np.linspace(x[0], x[-1], width * 2)
            y_dense = np.interp(x_dense, x, y)
        else:
            x_dense, y_dense = x, y
        cols = ((x_dense - x_low) / x_span * (width - 1)).round().astype(int)
        rows = (
            height - 1 - (y_dense - y_low) / y_span * (height - 1)
        ).round().astype(int)
        for row, col in zip(rows, cols):
            canvas[row][col] = marker
    plot = _render(canvas, x_label, y_label, (x_low, x_high), (y_low, y_high))
    return plot + "\n" + "\n".join(legend)
