"""Plain-text reporting: ASCII tables, scatter/line plots, CSV/JSON
export.  Everything the experiment drivers print goes through here."""

from .tables import format_table
from .ascii_plots import ascii_scatter, ascii_lines
from .export import matrix_to_csv, dataset_to_json
from .phases import format_phase_report

__all__ = [
    "format_table",
    "ascii_scatter",
    "ascii_lines",
    "matrix_to_csv",
    "dataset_to_json",
    "format_phase_report",
]
