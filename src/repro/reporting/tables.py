"""ASCII table formatting."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    align_right: "Sequence[bool] | None" = None,
    title: str = "",
) -> str:
    """Render a list of rows as an aligned ASCII table.

    Args:
        headers: column headers.
        rows: row cell values (converted with ``str``).
        align_right: per-column right-alignment flags (numbers read
            better right-aligned); defaults to left for all.
        title: optional line printed above the table.

    >>> print(format_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    columns = len(headers)
    if align_right is None:
        align_right = [False] * columns
    if len(align_right) != columns:
        raise ValueError("align_right length must match headers")
    text_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != columns:
            raise ValueError("row width must match headers")
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if align_right[index]:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return " | ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)
