"""Plain-text phase-analysis report: timeline, phase table, points.

Rendering for the ``repro phases`` CLI command: one
:class:`~repro.phases.PhaseResult` (plus the characteristic timeline of
the same trace) becomes a compact terminal report — the within-run
analogue of the cross-benchmark experiment reports.
"""

from __future__ import annotations

from typing import List

from .tables import format_table


def format_phase_report(
    result,
    points: List[int],
    timeline=None,
    name: str = "",
) -> str:
    """Render a phase decomposition (and optional timeline) as text.

    Args:
        result: a :class:`repro.phases.PhaseResult`.
        points: simulation points from
            :func:`repro.phases.simulation_points` (ordered by phase
            population, earliest label first on ties).
        timeline: optional
            :class:`repro.phases.CharacteristicTimeline` of the same
            trace, appended as sparklines.
        name: benchmark label for the header.
    """
    intervals = len(result.assignments)
    header = (
        f"phase analysis of {name or '<unnamed>'} — "
        f"{result.k} phase(s) over {intervals} intervals x "
        f"{result.interval:,} instructions"
        + (f" ({result.signature} signatures)" if result.signature else "")
    )
    lines = [header, "", "phase timeline (one symbol per interval):",
             result.format_timeline(), ""]

    sizes = result.phase_sizes()
    point_by_phase = {
        int(result.assignments[point]): point for point in points
    }
    rows = []
    for phase, point in point_by_phase.items():
        share = sizes[phase] / intervals if intervals else 0.0
        rows.append([
            phase,
            int(sizes[phase]),
            f"{share:.1%}",
            point,
            f"{point * result.interval:,}..."
            f"{(point + 1) * result.interval:,}",
        ])
    lines.append(
        format_table(
            ["phase", "intervals", "share", "sim point", "instructions"],
            rows,
            align_right=[True, True, True, True, False],
            title="simulation points (by population, earliest label "
                  "first on ties)",
        )
    )
    if timeline is not None:
        lines.extend(["", timeline.format()])
    return "\n".join(lines)
