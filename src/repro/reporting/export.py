"""CSV / JSON export of data sets and experiment results."""

from __future__ import annotations

import json
from typing import Sequence

import numpy as np


def matrix_to_csv(
    names: Sequence[str],
    columns: Sequence[str],
    matrix: np.ndarray,
    float_format: str = "{:.6g}",
) -> str:
    """Render a (benchmarks x characteristics) matrix as CSV text.

    The first column is the benchmark name; fields containing commas
    are quoted.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    if len(names) != matrix.shape[0]:
        raise ValueError("names must match matrix rows")
    if len(columns) != matrix.shape[1]:
        raise ValueError("columns must match matrix columns")

    def escape(field: str) -> str:
        if "," in field or '"' in field:
            return '"' + field.replace('"', '""') + '"'
        return field

    lines = [",".join(["benchmark"] + [escape(c) for c in columns])]
    for name, row in zip(names, matrix):
        cells = [escape(str(name))] + [
            float_format.format(float(value)) for value in row
        ]
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def dataset_to_json(
    names: Sequence[str],
    columns: Sequence[str],
    matrix: np.ndarray,
    metadata: "dict | None" = None,
) -> str:
    """Serialize a matrix with row/column labels (and optional metadata)
    to pretty-printed JSON."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or len(names) != matrix.shape[0]:
        raise ValueError("names must match matrix rows")
    if len(columns) != matrix.shape[1]:
        raise ValueError("columns must match matrix columns")
    payload = {
        "benchmarks": list(names),
        "columns": list(columns),
        "values": [
            [float(value) for value in row] for row in matrix
        ],
    }
    if metadata:
        payload["metadata"] = metadata
    return json.dumps(payload, indent=2, sort_keys=True)
