"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TraceError(ReproError):
    """A trace is malformed, inconsistent, or violates an invariant."""


class TraceFormatError(TraceError):
    """A trace file on disk could not be parsed."""


class ProfileError(ReproError):
    """A workload profile has invalid or inconsistent parameters."""


class UnknownBenchmarkError(ReproError):
    """A benchmark lookup in the registry failed."""

    def __init__(self, name: str, candidates: "list[str] | None" = None):
        self.name = name
        self.candidates = list(candidates or [])
        message = f"unknown benchmark: {name!r}"
        if self.candidates:
            preview = ", ".join(self.candidates[:5])
            message += f" (close matches: {preview})"
        super().__init__(message)


class CharacterizationError(ReproError):
    """A characteristic could not be computed from a trace."""


class SimulationError(ReproError):
    """A microarchitecture simulation failed or was misconfigured."""


class AnalysisError(ReproError):
    """A statistical analysis step received invalid input."""


class ConfigurationError(ReproError):
    """A configuration value is out of its valid range."""


class CacheError(ReproError):
    """An on-disk cache operation failed."""


class CacheIntegrityError(CacheError):
    """A cache entry's bytes cannot be trusted.

    Raised by the verification layer when an entry is truncated,
    bit-flipped, has the wrong shape/dtype, carries a stale semantic
    version, or belongs to a different cache level.  Loads translate
    this into a *verified miss* (the entry is quarantined); it only
    propagates from explicit verification APIs.
    """


class JournalError(ReproError):
    """A write-ahead journal record cannot be trusted.

    Raised while parsing individual journal lines (bad JSON, checksum
    mismatch, sequence break).  Replay converts it into a reported
    torn-tail truncation — the valid prefix is kept and the journal
    stays usable — so it only propagates from explicit low-level
    parsing APIs.
    """


class DatasetBuildError(ReproError):
    """A strict dataset build could not characterize every benchmark.

    Carries the full :class:`~repro.experiments.DatasetBuildReport` as
    ``report``, so callers see per-benchmark status, attempt counts and
    quarantine events instead of a bare pool error.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class ServiceError(ReproError):
    """Base of the characterization-service error family.

    Every service failure mode maps to exactly one subclass, and every
    subclass carries the HTTP ``status`` and machine-readable ``code``
    the service returns, so a fault injected at any seam always yields
    the documented typed response instead of an ad-hoc 500.
    """

    #: HTTP status the service answers with.
    status = 500
    #: Stable machine-readable error code (``body()["error"]["code"]``).
    code = "internal"

    def __init__(self, message: str, retry_after: "float | None" = None):
        super().__init__(message)
        self.retry_after = retry_after

    def body(self) -> dict:
        """The JSON error body served for this failure."""
        error = {
            "code": self.code,
            "status": self.status,
            "message": str(self),
        }
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        return {"error": error}


class BadRequestError(ServiceError):
    """The request body or query string could not be interpreted."""

    status = 400
    code = "bad_request"


class NotFoundError(ServiceError):
    """The requested route or resource does not exist."""

    status = 404
    code = "not_found"


class JobNotFoundError(NotFoundError):
    """A job id does not name a known (or still-retained) job."""

    code = "job_not_found"


class QueueFullError(ServiceError):
    """The bounded admission queue rejected a submission.

    Served as 429 with a ``Retry-After`` header; the queue never grows
    without bound.
    """

    status = 429
    code = "queue_full"


class CircuitOpenError(ServiceError):
    """The circuit breaker is open; cold work is refused for now."""

    status = 503
    code = "circuit_open"


class ServiceDrainingError(ServiceError):
    """The service received SIGTERM and no longer admits new work."""

    status = 503
    code = "draining"


class DeadlineExceededError(ServiceError):
    """A request's deadline elapsed before its job finished."""

    status = 504
    code = "deadline_exceeded"


class JobCancelledError(ServiceError):
    """A job was cancelled before completion (drain timeout)."""

    status = 503
    code = "cancelled"


def service_error_from_code(
    code: str, message: str, retry_after: "float | None" = None
) -> ServiceError:
    """Reconstruct the typed :class:`ServiceError` behind a wire code.

    Used by service-journal recovery to restore a failed/expired/
    cancelled job's original error — same subclass, same HTTP status,
    same body — from the (code, message, retry_after) triple the
    journal recorded.  Unknown codes fall back to the base
    :class:`ServiceError` (500).
    """
    classes = {
        cls.code: cls
        for cls in (
            ServiceError,
            BadRequestError,
            NotFoundError,
            JobNotFoundError,
            QueueFullError,
            CircuitOpenError,
            ServiceDrainingError,
            DeadlineExceededError,
            JobCancelledError,
        )
    }
    return classes.get(code, ServiceError)(message, retry_after=retry_after)


class CacheDegradedWarning(UserWarning):
    """A cache directory is unusable; computing without the cache.

    Emitted once per directory per process when stores fail (read-only
    directory, disk full).  The build continues uncached rather than
    raising.
    """
