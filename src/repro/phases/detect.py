"""Phase detection and simulation-point selection.

Intervals with similar code signatures are grouped into phases with the
same k-means + BIC machinery used for benchmark clustering; one
representative interval per phase (the one nearest its centroid) is a
*simulation point*.  :func:`phase_homogeneity` checks the SimPoint
premise on this substrate: a microarchitecture-dependent metric should
vary less within a phase than across the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import AnalysisError
from ..analysis.cluster import choose_k
from ..trace import Trace
from .intervals import basic_block_vectors, split_intervals


@dataclass(frozen=True)
class PhaseResult:
    """Phase decomposition of one trace.

    Attributes:
        interval: instructions per interval.
        assignments: phase label per interval, in time order.
        k: number of phases.
        signatures: the per-interval feature matrix used.
    """

    interval: int
    assignments: np.ndarray
    k: int
    signatures: np.ndarray

    def phase_sizes(self) -> np.ndarray:
        """Interval count per phase."""
        return np.bincount(self.assignments, minlength=self.k)

    def format_timeline(self, width: int = 72) -> str:
        """The phase sequence as a compact character timeline."""
        symbols = "0123456789abcdefghijklmnopqrstuvwxyz"
        labels = [
            symbols[label % len(symbols)] for label in self.assignments
        ]
        text = "".join(labels)
        lines = [
            text[start : start + width]
            for start in range(0, len(text), width)
        ]
        return "\n".join(lines)


def detect_phases(
    trace: Trace,
    interval: int = 5_000,
    max_phases: int = 12,
    seed: int = 0,
) -> PhaseResult:
    """Decompose a trace into phases by code signature.

    Args:
        trace: the dynamic instruction trace.
        interval: instructions per interval.
        max_phases: upper bound on the phase count explored.
        seed: k-means seed.

    Raises:
        AnalysisError: if the trace yields fewer than two intervals.
    """
    signatures = basic_block_vectors(trace, interval)
    upper = min(max_phases, len(signatures) - 1)
    clustering = choose_k(
        signatures, k_range=(1, max(upper, 1)), score_fraction=0.9,
        seed=seed,
    )
    return PhaseResult(
        interval=interval,
        assignments=clustering.result.assignments,
        k=clustering.result.k,
        signatures=signatures,
    )


def simulation_points(result: PhaseResult) -> List[int]:
    """One representative interval index per phase (nearest to the
    phase's signature centroid), ordered by phase population."""
    points = []
    order = np.argsort(result.phase_sizes())[::-1]
    for phase in order:
        member_indices = np.flatnonzero(result.assignments == phase)
        if len(member_indices) == 0:
            continue
        members = result.signatures[member_indices]
        center = members.mean(axis=0)
        nearest = int(
            member_indices[
                int(np.argmin(np.linalg.norm(members - center, axis=1)))
            ]
        )
        points.append(nearest)
    return points


def phase_homogeneity(
    trace: Trace,
    result: PhaseResult,
    metric,
) -> Tuple[float, float]:
    """Within-phase vs overall variability of a per-interval metric.

    Args:
        trace: the trace the phases were detected on.
        result: the phase decomposition.
        metric: callable mapping an interval :class:`Trace` to a float
            (e.g. simulated IPC or a miss rate).

    Returns:
        ``(within_std, overall_std)`` — the population-weighted average
        of per-phase standard deviations, and the standard deviation
        over all intervals.  The SimPoint premise holds when the first
        is clearly smaller.
    """
    intervals = split_intervals(trace, result.interval)
    if len(intervals) != len(result.assignments):
        raise AnalysisError("phase result does not match this trace")
    values = np.array([float(metric(chunk)) for chunk in intervals])
    overall_std = float(values.std())
    weighted = 0.0
    for phase in range(result.k):
        member_values = values[result.assignments == phase]
        if len(member_values) == 0:
            continue
        weighted += len(member_values) / len(values) * float(
            member_values.std()
        )
    return weighted, overall_std
