"""Phase detection and simulation-point selection.

Intervals with similar signatures are grouped into phases with the same
k-means + BIC machinery used for benchmark clustering; one
representative interval per phase (the one nearest its centroid) is a
*simulation point*.  Three signature substrates are supported:

* ``"bbv"`` — basic-block vectors (the SimPoint code signature);
* ``"mix"`` — per-interval instruction-mix fractions;
* ``"mica"`` — full 47-dimensional per-interval MICA vectors from the
  segmented characterization engine (bit-identical to characterizing
  each chunk separately), clustered in column-z-scored space because
  raw Table II scales are wildly heterogeneous (working-set counts vs
  fractions).

:func:`phase_homogeneity` checks the SimPoint premise on this
substrate: a microarchitecture-dependent metric should vary less within
a phase than across the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from ..analysis.cluster import choose_k
from ..analysis.normalize import zscore
from ..config import DEFAULT_CONFIG, ReproConfig
from ..errors import AnalysisError
from ..trace import Trace
from .engine import interval_mica_vectors
from .intervals import basic_block_vectors, interval_mix, split_intervals

#: Supported per-interval signature substrates.
SIGNATURE_KINDS = ("bbv", "mix", "mica")


@dataclass(frozen=True)
class PhaseResult:
    """Phase decomposition of one trace.

    Attributes:
        interval: instructions per interval.
        assignments: phase label per interval, in time order.
        k: number of phases.
        signatures: the per-interval feature matrix used (raw values;
            for ``signature="mica"`` these are exactly the per-chunk
            47-dimensional characteristic vectors).
        signature: which substrate produced ``signatures``
            (``"bbv"``/``"mix"``/``"mica"``; empty for hand-built
            results).
        trace_length: length of the trace the phases were detected on
            (0 for hand-built results).
        trace_digest: content digest of that trace
            (:meth:`repro.trace.Trace.content_digest`; empty for
            hand-built results).  :func:`phase_homogeneity` checks it
            so a *different* trace that happens to split into the same
            number of intervals is rejected instead of silently
            producing nonsense.
    """

    interval: int
    assignments: np.ndarray
    k: int
    signatures: np.ndarray
    signature: str = ""
    trace_length: int = 0
    trace_digest: str = ""

    def phase_sizes(self) -> np.ndarray:
        """Interval count per phase."""
        return np.bincount(self.assignments, minlength=self.k)

    def format_timeline(self, width: int = 72) -> str:
        """The phase sequence as a compact character timeline."""
        symbols = "0123456789abcdefghijklmnopqrstuvwxyz"
        labels = [
            symbols[label % len(symbols)] for label in self.assignments
        ]
        text = "".join(labels)
        lines = [
            text[start : start + width]
            for start in range(0, len(text), width)
        ]
        return "\n".join(lines)


def _check_result_matches(trace: Trace, result: PhaseResult) -> None:
    """Reject a phase result computed on a different trace."""
    if result.trace_length and result.trace_length != len(trace):
        raise AnalysisError(
            f"phase result was detected on a {result.trace_length}-"
            f"instruction trace, got {len(trace)}"
        )
    if result.trace_digest and result.trace_digest != trace.content_digest():
        raise AnalysisError(
            "phase result does not match this trace (same length, "
            "different content)"
        )


def detect_phases(
    trace: Trace,
    interval: int = 5_000,
    max_phases: int = 12,
    seed: int = 0,
    signature: str = "bbv",
    config: ReproConfig = DEFAULT_CONFIG,
) -> PhaseResult:
    """Decompose a trace into phases by per-interval signature.

    Args:
        trace: the dynamic instruction trace.
        interval: instructions per interval.
        max_phases: upper bound on the phase count explored.
        seed: k-means seed.
        signature: ``"bbv"`` (code signatures, the SimPoint default),
            ``"mix"`` (instruction-mix vectors) or ``"mica"`` (full
            per-interval MICA vectors from the segmented engine,
            clustered z-scored).
        config: characterization parameters (``"mica"`` only).

    Raises:
        AnalysisError: on an unknown signature kind, a non-positive
            interval, or a trace yielding fewer than two intervals.
    """
    if signature == "bbv":
        signatures = basic_block_vectors(trace, interval)
        clustering_space = signatures
    elif signature == "mix":
        signatures = interval_mix(trace, interval)
        clustering_space = signatures
    elif signature == "mica":
        signatures = interval_mica_vectors(trace, interval, config)
        # Raw Table II columns span orders of magnitude (working-set
        # counts vs probabilities): cluster z-scored, report raw.
        clustering_space = zscore(signatures)
    else:
        raise AnalysisError(
            f"unknown signature kind: {signature!r} "
            f"(expected one of {SIGNATURE_KINDS})"
        )
    upper = min(max_phases, len(signatures) - 1)
    clustering = choose_k(
        clustering_space, k_range=(1, max(upper, 1)), score_fraction=0.9,
        seed=seed,
    )
    return PhaseResult(
        interval=interval,
        assignments=clustering.result.assignments,
        k=clustering.result.k,
        signatures=signatures,
        signature=signature,
        trace_length=len(trace),
        trace_digest=trace.content_digest(),
    )


def simulation_points(result: PhaseResult) -> List[int]:
    """One representative interval index per phase (nearest to the
    phase's signature centroid).

    Ordered by descending phase population; equal-population phases tie
    -break to the earliest (lowest) phase label, so the order is
    deterministic and stable across runs.
    """
    points = []
    # A reversed ascending argsort would order equal populations by
    # *descending* label; sorting on the negated sizes with a stable
    # sort keeps ties in ascending label order instead.
    order = np.argsort(-result.phase_sizes(), kind="stable")
    for phase in order:
        member_indices = np.flatnonzero(result.assignments == phase)
        if len(member_indices) == 0:
            continue
        members = result.signatures[member_indices]
        center = members.mean(axis=0)
        nearest = int(
            member_indices[
                int(np.argmin(np.linalg.norm(members - center, axis=1)))
            ]
        )
        points.append(nearest)
    return points


def phase_homogeneity(
    trace: Trace,
    result: PhaseResult,
    metric: Callable,
    on: str = "trace",
) -> Tuple[float, float]:
    """Within-phase vs overall variability of a per-interval metric.

    Args:
        trace: the trace the phases were detected on (verified against
            the identity carried by ``result`` — a different trace of
            the same length is rejected).
        result: the phase decomposition.
        metric: with ``on="trace"``, a callable mapping an interval
            :class:`Trace` to a float (e.g. simulated IPC or a miss
            rate); with ``on="signatures"``, a callable mapping one row
            of ``result.signatures`` to a float — the trace is *not*
            re-split, the result's own per-interval signatures are
            reused.
        on: ``"trace"`` or ``"signatures"``.

    Returns:
        ``(within_std, overall_std)`` — the population-weighted average
        of per-phase standard deviations, and the standard deviation
        over all intervals.  The SimPoint premise holds when the first
        is clearly smaller.

    Raises:
        AnalysisError: if ``result`` was not computed on ``trace``, or
            on an unknown ``on`` kind.
    """
    _check_result_matches(trace, result)
    if on == "trace":
        intervals = split_intervals(trace, result.interval)
        if len(intervals) != len(result.assignments):
            raise AnalysisError("phase result does not match this trace")
        values = np.array([float(metric(chunk)) for chunk in intervals])
    elif on == "signatures":
        values = np.array(
            [float(metric(row)) for row in result.signatures]
        )
    else:
        raise AnalysisError(
            f"unknown metric substrate: {on!r} "
            "(expected 'trace' or 'signatures')"
        )
    overall_std = float(values.std())
    weighted = 0.0
    for phase in range(result.k):
        member_values = values[result.assignments == phase]
        if len(member_values) == 0:
            continue
        weighted += len(member_values) / len(values) * float(
            member_values.std()
        )
    return weighted, overall_std
