"""Per-interval feature extraction for phase analysis.

A trace is split into fixed-length intervals; each interval is
summarized by a cheap feature vector:

* **basic-block vectors** (BBVs, the SimPoint signature): the relative
  execution frequency of each static code region (PC blocks), capturing
  *what code* ran;
* **instruction-mix vectors**: the six Table II mix fractions per
  interval, a behavior-level alternative.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import AnalysisError
from ..isa import OpClass
from ..trace import Trace

#: Code-region granularity for BBVs, in bytes of code.
BBV_REGION_BYTES = 128


def interval_count(trace: Trace, interval: int) -> int:
    """Number of full intervals — the phase layer's shared validation.

    Every per-interval feature extractor (:func:`split_intervals`,
    :func:`basic_block_vectors`, :func:`interval_mix`, and the
    segmented timeline engine) funnels through this check, so a bad
    interval always surfaces as the same :class:`AnalysisError` rather
    than a ``ZeroDivisionError`` from ``len(trace) // interval``.

    Raises:
        AnalysisError: on ``interval <= 0`` or a trace yielding fewer
            than two intervals.
    """
    if interval <= 0:
        raise AnalysisError(f"interval must be positive, got {interval}")
    count = len(trace) // interval
    if count < 2:
        raise AnalysisError(
            f"trace too short: {len(trace)} instructions give "
            f"{count} interval(s) of {interval}"
        )
    return count


def split_intervals(trace: Trace, interval: int) -> List[Trace]:
    """Consecutive fixed-size intervals (trailing partial dropped).

    Raises:
        AnalysisError: on a non-positive interval or a trace yielding
            fewer than two intervals.
    """
    count = interval_count(trace, interval)
    return [
        trace[start : start + interval]
        for start in range(0, count * interval, interval)
    ]


def basic_block_vectors(
    trace: Trace, interval: int, region_bytes: int = BBV_REGION_BYTES
) -> np.ndarray:
    """SimPoint-style code signatures, one row per interval.

    Each column is a static code region of ``region_bytes``; entries
    are the fraction of the interval's instructions fetched from that
    region.  Rows sum to one.

    Raises:
        AnalysisError: on a non-power-of-two region size, a non-positive
            interval, or a trace yielding fewer than two intervals.
    """
    if region_bytes <= 0 or region_bytes & (region_bytes - 1):
        raise AnalysisError("region_bytes must be a positive power of two")
    shift = region_bytes.bit_length() - 1
    count = interval_count(trace, interval)
    regions = (trace.pc[: count * interval] >> np.uint64(shift)).astype(
        np.int64
    )
    unique_regions, region_index = np.unique(regions, return_inverse=True)
    vectors = np.zeros((count, len(unique_regions)))
    interval_index = np.repeat(np.arange(count), interval)
    np.add.at(vectors, (interval_index, region_index), 1.0)
    return vectors / interval


def interval_mix(trace: Trace, interval: int) -> np.ndarray:
    """Instruction-mix fractions per interval (one row each).

    Columns follow Table II order: loads, stores, branches, arithmetic,
    integer multiplies, FP.

    Raises:
        AnalysisError: on a non-positive interval or a trace yielding
            fewer than two intervals.
    """
    count = interval_count(trace, interval)
    classes = trace.opclass[: count * interval].astype(np.int64)
    interval_index = np.repeat(np.arange(count), interval)
    order = [
        int(OpClass.LOAD),
        int(OpClass.STORE),
        int(OpClass.BRANCH),
        int(OpClass.INT_ALU),
        int(OpClass.INT_MUL),
        int(OpClass.FP),
    ]
    vectors = np.zeros((count, len(order)))
    for column, opclass in enumerate(order):
        mask = classes == opclass
        np.add.at(vectors[:, column], interval_index[mask], 1.0)
    return vectors / interval
