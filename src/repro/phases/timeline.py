"""Characteristic timelines: MICA over execution time.

Joshi et al. (IEEE TC 2006) and the phase literature study how inherent
characteristics *evolve within a run*.  This module computes selected
Table II characteristics per interval, producing a timeline matrix that
quantifies behavioral drift — the within-benchmark analogue of the
cross-benchmark workload space.

Only interval-computable characteristics are supported (the global
working-set counts are cumulative by definition and are reported as
per-interval unique counts instead).

Two implementations are provided:

* :func:`mica_timeline` — the production path, backed by the segmented
  interval-characterization engine
  (:func:`repro.mica.segmented_characterize` via
  :func:`repro.phases.engine.interval_characteristics`): one pass over
  the full trace, computing only the Table II sections the requested
  keys need.
* :func:`mica_timeline_reference` — the original per-chunk loop,
  retained as the executable specification
  (``tests/test_phases_segmented_equivalence.py`` pins the engine to it
  bit-for-bit).  It too computes only the needed sections: requesting
  ``mix_loads`` alone must not run PPM or ILP on every chunk in either
  implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import DEFAULT_CONFIG, ReproConfig
from ..mica.characteristics import NUM_CHARACTERISTICS, category_slices
from ..mica.ilp import ilp_ipc, producer_indices
from ..mica.instruction_mix import instruction_mix
from ..mica.ppm import ppm_predictabilities
from ..mica.register_traffic import register_traffic
from ..mica.strides import stride_profile
from ..mica.working_set import working_set
from ..trace import Trace
from .engine import interval_characteristics, resolve_keys
from .intervals import split_intervals

#: Characteristics cheap enough to compute per interval by default —
#: one per Table II category.
DEFAULT_TIMELINE_KEYS = (
    "mix_loads",
    "ilp_w32",
    "reg_dep_le8",
    "ws_data_blocks",
    "stride_local_load_le8",
    "ppm_GAg",
)


@dataclass(frozen=True)
class CharacteristicTimeline:
    """Per-interval characteristic values for one trace.

    Attributes:
        keys: characteristic keys (columns).
        values: (intervals x keys) matrix.
        interval: instructions per interval.
    """

    keys: "tuple[str, ...]"
    values: np.ndarray
    interval: int

    def drift(self) -> np.ndarray:
        """Coefficient of variation per characteristic (0 = steady).

        Characteristics whose mean is zero report zero drift.
        """
        means = self.values.mean(axis=0)
        stds = self.values.std(axis=0)
        result = np.zeros(len(self.keys))
        nonzero = means != 0.0
        result[nonzero] = stds[nonzero] / np.abs(means[nonzero])
        return result

    def format(self, width: int = 40) -> str:
        """Sparkline-style rendering, one row per characteristic."""
        ramp = " .:-=+*#%@"
        lines = [
            f"characteristic timeline "
            f"({len(self.values)} intervals x {self.interval:,} instr)"
        ]
        for column, key in enumerate(self.keys):
            series = self.values[:, column]
            low, high = float(series.min()), float(series.max())
            spread = high - low
            if spread == 0.0:
                bars = ramp[1] * min(len(series), width)
            else:
                resampled = np.interp(
                    np.linspace(0, len(series) - 1, min(len(series), width)),
                    np.arange(len(series)),
                    series,
                )
                levels = (
                    (resampled - low) / spread * (len(ramp) - 1)
                ).round().astype(int)
                bars = "".join(ramp[level] for level in levels)
            lines.append(f"  {key:<24} |{bars}| "
                         f"[{low:.3g} .. {high:.3g}]")
        return "\n".join(lines)


def mica_timeline(
    trace: Trace,
    interval: int = 10_000,
    keys: Sequence[str] = DEFAULT_TIMELINE_KEYS,
    config: ReproConfig = DEFAULT_CONFIG,
) -> CharacteristicTimeline:
    """Compute selected characteristics for every interval of a trace.

    One pass of the segmented engine over the full trace — no per-chunk
    re-characterization — computing only the Table II sections the
    requested keys need.  Bit-identical to
    :func:`mica_timeline_reference`.

    Args:
        trace: the dynamic instruction trace.
        interval: instructions per interval.
        keys: Table II characteristic keys to track.
        config: characterization parameters.

    Raises:
        AnalysisError: on unknown keys, an empty key list, a
            non-positive interval, or a trace shorter than two
            intervals.
    """
    values = interval_characteristics(trace, interval, keys, config)
    return CharacteristicTimeline(
        keys=tuple(keys),
        values=values,
        interval=interval,
    )


def _chunk_sections(
    chunk: Trace, categories: "tuple[str, ...]", config: ReproConfig
) -> np.ndarray:
    """One chunk's Table II sections, exactly as ``characterize`` runs
    them (shared producer recovery included); unrequested sections are
    left ``NaN``."""
    slices = category_slices()
    row = np.full(NUM_CHARACTERISTICS, np.nan)
    producers = None
    if "ILP" in categories or "register traffic" in categories:
        producers = producer_indices(chunk)
    if "instruction mix" in categories:
        row[slices["instruction mix"]] = instruction_mix(chunk)
    if "ILP" in categories:
        row[slices["ILP"]] = ilp_ipc(
            chunk, config.ilp_window_sizes, producers=producers
        )
    if "register traffic" in categories:
        row[slices["register traffic"]] = register_traffic(
            chunk, config.reg_dep_thresholds, producers=producers
        )
    if "working set size" in categories:
        row[slices["working set size"]] = working_set(
            chunk, config.block_bytes, config.page_bytes
        )
    if "data stream strides" in categories:
        row[slices["data stream strides"]] = stride_profile(
            chunk, config.stride_thresholds
        )
    if "branch predictability" in categories:
        row[slices["branch predictability"]] = ppm_predictabilities(
            chunk, config.ppm_max_order
        )
    return row


def mica_timeline_reference(
    trace: Trace,
    interval: int = 10_000,
    keys: Sequence[str] = DEFAULT_TIMELINE_KEYS,
    config: ReproConfig = DEFAULT_CONFIG,
) -> CharacteristicTimeline:
    """Per-chunk timeline — the executable specification.

    Slices the trace into intervals and runs the Table II analyzers on
    every chunk, exactly as :func:`repro.mica.characterize` would
    (restricted to the sections the requested keys need).  Retained for
    the equivalence tests and the perf harness; the segmented
    :func:`mica_timeline` must match it bit-for-bit.
    """
    indices, categories = resolve_keys(keys)
    chunks = split_intervals(trace, interval)
    rows = [
        _chunk_sections(chunk, categories, config)[indices]
        for chunk in chunks
    ]
    return CharacteristicTimeline(
        keys=tuple(keys),
        values=np.vstack(rows),
        interval=interval,
    )
