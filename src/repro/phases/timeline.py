"""Characteristic timelines: MICA over execution time.

Joshi et al. (IEEE TC 2006) and the phase literature study how inherent
characteristics *evolve within a run*.  This module computes selected
Table II characteristics per interval, producing a timeline matrix that
quantifies behavioral drift — the within-benchmark analogue of the
cross-benchmark workload space.

Only interval-computable characteristics are supported (the global
working-set counts are cumulative by definition and are reported as
per-interval unique counts instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..config import DEFAULT_CONFIG, ReproConfig
from ..errors import AnalysisError
from ..mica import characterize
from ..mica.characteristics import characteristic_by_key
from ..trace import Trace
from .intervals import split_intervals

#: Characteristics cheap enough to compute per interval by default —
#: one per Table II category.
DEFAULT_TIMELINE_KEYS = (
    "mix_loads",
    "ilp_w32",
    "reg_dep_le8",
    "ws_data_blocks",
    "stride_local_load_le8",
    "ppm_GAg",
)


@dataclass(frozen=True)
class CharacteristicTimeline:
    """Per-interval characteristic values for one trace.

    Attributes:
        keys: characteristic keys (columns).
        values: (intervals x keys) matrix.
        interval: instructions per interval.
    """

    keys: "tuple[str, ...]"
    values: np.ndarray
    interval: int

    def drift(self) -> np.ndarray:
        """Coefficient of variation per characteristic (0 = steady).

        Characteristics whose mean is zero report zero drift.
        """
        means = self.values.mean(axis=0)
        stds = self.values.std(axis=0)
        result = np.zeros(len(self.keys))
        nonzero = means != 0.0
        result[nonzero] = stds[nonzero] / np.abs(means[nonzero])
        return result

    def format(self, width: int = 40) -> str:
        """Sparkline-style rendering, one row per characteristic."""
        ramp = " .:-=+*#%@"
        lines = [
            f"characteristic timeline "
            f"({len(self.values)} intervals x {self.interval:,} instr)"
        ]
        for column, key in enumerate(self.keys):
            series = self.values[:, column]
            low, high = float(series.min()), float(series.max())
            spread = high - low
            if spread == 0.0:
                bars = ramp[1] * min(len(series), width)
            else:
                resampled = np.interp(
                    np.linspace(0, len(series) - 1, min(len(series), width)),
                    np.arange(len(series)),
                    series,
                )
                levels = (
                    (resampled - low) / spread * (len(ramp) - 1)
                ).round().astype(int)
                bars = "".join(ramp[level] for level in levels)
            lines.append(f"  {key:<24} |{bars}| "
                         f"[{low:.3g} .. {high:.3g}]")
        return "\n".join(lines)


def mica_timeline(
    trace: Trace,
    interval: int = 10_000,
    keys: Sequence[str] = DEFAULT_TIMELINE_KEYS,
    config: ReproConfig = DEFAULT_CONFIG,
) -> CharacteristicTimeline:
    """Compute selected characteristics for every interval of a trace.

    Args:
        trace: the dynamic instruction trace.
        interval: instructions per interval.
        keys: Table II characteristic keys to track.
        config: characterization parameters.

    Raises:
        AnalysisError: on unknown keys or a trace shorter than two
            intervals.
    """
    if not keys:
        raise AnalysisError("need at least one characteristic key")
    indices: List[int] = []
    for key in keys:
        try:
            indices.append(characteristic_by_key(key).array_index)
        except KeyError:
            raise AnalysisError(f"unknown characteristic key: {key!r}")

    chunks = split_intervals(trace, interval)
    rows = [
        characterize(chunk, config).values[indices] for chunk in chunks
    ]
    return CharacteristicTimeline(
        keys=tuple(keys),
        values=np.vstack(rows),
        interval=interval,
    )
