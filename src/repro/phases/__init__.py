"""Program-phase analysis (the paper's related-work thread).

The paper's section VII discusses the strong correlation between
executed code and performance (SimPoint; Sherwood et al., Lau et al.):
execution intervals that execute similar code behave similarly on
microarchitecture-dependent metrics.  Code signatures identify *phases
within one benchmark* — complementary to MICA, which compares *across*
benchmarks.  This package implements that methodology:

* :func:`basic_block_vectors` — per-interval code signatures (BBVs);
* :func:`interval_mix` — per-interval instruction-mix vectors;
* :func:`interval_mica_vectors` / :func:`mica_timeline` — full or
  selected per-interval MICA characteristics from the segmented
  characterization engine (:mod:`repro.mica.segmented`): one pass over
  the trace, bit-identical to characterizing every chunk separately
  (the retained per-chunk loop is :func:`mica_timeline_reference`);
* :func:`detect_phases` — cluster intervals into phases (k-means +
  BIC) on a ``"bbv"``, ``"mix"`` or ``"mica"`` signature substrate and
  pick one simulation point per phase;
* :func:`phase_homogeneity` — verify the premise: metric variation
  within phases vs across the whole run.
"""

from .intervals import (
    basic_block_vectors,
    interval_count,
    interval_mix,
    split_intervals,
)
from .engine import (
    interval_characteristics,
    interval_mica_vectors,
    resolve_keys,
)
from .detect import (
    PhaseResult,
    SIGNATURE_KINDS,
    detect_phases,
    phase_homogeneity,
    simulation_points,
)
from .timeline import (
    CharacteristicTimeline,
    DEFAULT_TIMELINE_KEYS,
    mica_timeline,
    mica_timeline_reference,
)

__all__ = [
    "basic_block_vectors",
    "interval_count",
    "interval_mix",
    "split_intervals",
    "interval_characteristics",
    "interval_mica_vectors",
    "resolve_keys",
    "PhaseResult",
    "SIGNATURE_KINDS",
    "detect_phases",
    "phase_homogeneity",
    "simulation_points",
    "CharacteristicTimeline",
    "DEFAULT_TIMELINE_KEYS",
    "mica_timeline",
    "mica_timeline_reference",
]
