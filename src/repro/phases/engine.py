"""Phase-layer entry to the segmented characterization engine.

The phase modules consume per-interval MICA data in two shapes: selected
Table II characteristics for timelines (:func:`interval_characteristics`)
and full 47-dimensional vectors for MICA-signature phase detection
(:func:`interval_mica_vectors`).  Both map their request onto the
section-granular :func:`repro.mica.segmented_characterize` engine — one
pass over the full trace, computing *only* the Table II sections the
requested keys actually need, with per-chunk state-restart semantics
reproduced exactly (see :mod:`repro.mica.segmented` for how).

This module also owns key validation, shared with the retained
per-chunk ``mica_timeline_reference`` so the engine and its executable
specification accept and reject exactly the same inputs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG, ReproConfig
from ..errors import AnalysisError
from ..mica.characteristics import characteristic_by_key
from ..mica.segmented import segmented_characterize
from ..trace import Trace
from .intervals import interval_count


def resolve_keys(
    keys: Sequence[str],
) -> Tuple[List[int], Tuple[str, ...]]:
    """Map characteristic keys to vector indices and needed sections.

    Returns:
        ``(array_indices, categories)`` — the 0-based positions of the
        requested keys in Table II order, and the (deduplicated,
        schema-ordered) Table II categories that must be computed to
        fill them.  Everything outside ``categories`` can be skipped —
        requesting only ``mix_loads`` must not run PPM or ILP.

    Raises:
        AnalysisError: on an empty key list or an unknown key.
    """
    if not keys:
        raise AnalysisError("need at least one characteristic key")
    indices: List[int] = []
    categories: List[str] = []
    for key in keys:
        try:
            characteristic = characteristic_by_key(key)
        except KeyError:
            raise AnalysisError(f"unknown characteristic key: {key!r}")
        indices.append(characteristic.array_index)
        if characteristic.category not in categories:
            categories.append(characteristic.category)
    return indices, tuple(categories)


def interval_characteristics(
    trace: Trace,
    interval: int,
    keys: Sequence[str],
    config: ReproConfig = DEFAULT_CONFIG,
) -> np.ndarray:
    """Selected characteristics per interval, one engine pass.

    Args:
        trace: the dynamic instruction trace.
        interval: instructions per interval.
        keys: Table II characteristic keys (columns of the result).
        config: characterization parameters.

    Returns:
        ``(intervals x len(keys))`` matrix, bit-identical to
        characterizing every chunk separately and selecting ``keys``.

    Raises:
        AnalysisError: on unknown keys, a non-positive interval, or a
            trace yielding fewer than two intervals.
    """
    indices, _ = resolve_keys(keys)
    interval_count(trace, interval)  # Phase-layer validation (>= 2).
    values = segmented_characterize(trace, interval, config, indices=indices)
    return values[:, indices]


def interval_mica_vectors(
    trace: Trace,
    interval: int,
    config: ReproConfig = DEFAULT_CONFIG,
) -> np.ndarray:
    """Full 47-dimensional MICA vector per interval, one engine pass.

    The MICA-signature substrate for :func:`repro.phases.detect_phases`:
    row ``i`` is bit-identical to
    ``characterize(trace[i * interval : (i + 1) * interval]).values``.

    Raises:
        AnalysisError: on a non-positive interval or a trace yielding
            fewer than two intervals.
    """
    interval_count(trace, interval)  # Phase-layer validation (>= 2).
    return segmented_characterize(trace, interval, config)
