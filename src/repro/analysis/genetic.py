"""Genetic-algorithm characteristic selection (section V-B of the paper).

A solution is a bit string over the N characteristics (1 = selected).
The fitness of a solution is

    f = rho * (1 - n / N)

where ``rho`` is the Pearson correlation between the pairwise benchmark
distances in the full (z-scored) data set and the distances in the
selected subset, and ``n`` is the number of selected characteristics —
so the GA simultaneously maximizes fidelity to the full workload space
and minimizes how many characteristics must be measured.

Generations evolve by elitist tournament selection, uniform crossover
and per-bit mutation; evolution stops after ``generations`` rounds or
when the best fitness has not improved for ``patience`` rounds,
following the paper ("until no more improvement is observed").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import AnalysisError
from .correlation import pearson
from .distance import pairwise_distances


@dataclass(frozen=True)
class GAResult:
    """Outcome of a GA selection run.

    Attributes:
        selected: sorted indices of the selected characteristics.
        fitness: best fitness ``rho * (1 - n/N)``.
        rho: distance-correlation term of the best solution.
        generations_run: generations actually evolved.
        history: best fitness after every generation.
    """

    selected: Tuple[int, ...]
    fitness: float
    rho: float
    generations_run: int
    history: Tuple[float, ...]

    @property
    def n_selected(self) -> int:
        return len(self.selected)


class GeneticSelector:
    """GA-based selection of key characteristics.

    Args:
        population: individuals per generation (>= 2).
        generations: maximum generations.
        patience: stop after this many generations without improvement.
        mutation_rate: per-bit flip probability (default 1/N at run
            time when None).
        crossover_rate: probability a child is produced by crossover
            rather than cloned.
        elite: individuals copied unchanged into the next generation.
        seed: RNG seed (results are deterministic given the seed).
        size_penalty: when False, fitness is plain ``rho`` — the
            ablation variant without the ``(1 - n/N)`` term.
    """

    def __init__(
        self,
        population: int = 64,
        generations: int = 60,
        patience: int = 15,
        mutation_rate: "float | None" = None,
        crossover_rate: float = 0.9,
        elite: int = 2,
        seed: int = 42,
        size_penalty: bool = True,
    ):
        if population < 2:
            raise AnalysisError("population must be >= 2")
        if generations < 1:
            raise AnalysisError("generations must be >= 1")
        if elite >= population:
            raise AnalysisError("elite must be smaller than population")
        self.population = population
        self.generations = generations
        self.patience = patience
        self.mutation_rate = mutation_rate
        self.crossover_rate = crossover_rate
        self.elite = elite
        self.seed = seed
        self.size_penalty = size_penalty

    def select(self, data: np.ndarray) -> GAResult:
        """Run the GA on a (n benchmarks x N characteristics) z-scored
        matrix and return the best subset found."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] < 3:
            raise AnalysisError("GA needs a 2-D matrix with >= 3 rows")
        n_features = data.shape[1]
        rng = np.random.default_rng(self.seed)
        full_distances = pairwise_distances(data)
        mutation_rate = (
            self.mutation_rate
            if self.mutation_rate is not None
            else 1.0 / n_features
        )

        fitness_cache: Dict[bytes, Tuple[float, float]] = {}

        def evaluate(mask: np.ndarray) -> Tuple[float, float]:
            """(fitness, rho) of one bit mask, memoized."""
            key = mask.tobytes()
            cached = fitness_cache.get(key)
            if cached is not None:
                return cached
            count = int(mask.sum())
            if count == 0:
                result = (-1.0, 0.0)
            else:
                subset_distances = pairwise_distances(data[:, mask])
                rho = pearson(full_distances, subset_distances)
                if self.size_penalty:
                    fitness = rho * (1.0 - count / n_features)
                else:
                    fitness = rho
                result = (fitness, rho)
            fitness_cache[key] = result
            return result

        # Initial population: varied densities so both small and large
        # subsets are represented from the start.
        population = np.zeros((self.population, n_features), dtype=bool)
        for row in range(self.population):
            density = rng.uniform(0.1, 0.6)
            population[row] = rng.random(n_features) < density
            if not population[row].any():
                population[row, rng.integers(n_features)] = True

        scores = np.array([evaluate(ind)[0] for ind in population])
        best_index = int(np.argmax(scores))
        best_mask = population[best_index].copy()
        best_fitness = float(scores[best_index])
        history: List[float] = []
        stale = 0
        generations_run = 0

        for generation in range(self.generations):
            generations_run = generation + 1
            next_population = np.zeros_like(population)
            # Elitism: carry over the current best individuals.
            elite_order = np.argsort(scores)[::-1][: self.elite]
            next_population[: self.elite] = population[elite_order]

            for row in range(self.elite, self.population):
                parent_a = self._tournament(rng, population, scores)
                if rng.random() < self.crossover_rate:
                    parent_b = self._tournament(rng, population, scores)
                    take_from_a = rng.random(n_features) < 0.5
                    child = np.where(take_from_a, parent_a, parent_b)
                else:
                    child = parent_a.copy()
                flips = rng.random(n_features) < mutation_rate
                child = child ^ flips
                if not child.any():
                    child[rng.integers(n_features)] = True
                next_population[row] = child

            population = next_population
            scores = np.array([evaluate(ind)[0] for ind in population])
            generation_best = int(np.argmax(scores))
            if scores[generation_best] > best_fitness + 1e-12:
                best_fitness = float(scores[generation_best])
                best_mask = population[generation_best].copy()
                stale = 0
            else:
                stale += 1
            history.append(best_fitness)
            if stale >= self.patience:
                break

        _, best_rho = evaluate(best_mask)
        return GAResult(
            selected=tuple(sorted(np.flatnonzero(best_mask).tolist())),
            fitness=best_fitness,
            rho=best_rho,
            generations_run=generations_run,
            history=tuple(history),
        )

    @staticmethod
    def _tournament(
        rng: np.random.Generator,
        population: np.ndarray,
        scores: np.ndarray,
        size: int = 3,
    ) -> np.ndarray:
        contenders = rng.integers(0, len(population), size=size)
        winner = contenders[int(np.argmax(scores[contenders]))]
        return population[winner]
