"""Pairwise benchmark distances.

The paper compares benchmarks by the Euclidean distance between their
(normalized) characteristic vectors, over all benchmark tuples.  The
condensed form (one entry per unordered pair, scipy ``pdist`` layout) is
the canonical representation throughout this library.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import pdist, squareform

from ..errors import AnalysisError


def pairwise_distances(data: np.ndarray) -> np.ndarray:
    """Condensed Euclidean distances between all row pairs.

    Args:
        data: (n benchmarks x d characteristics) matrix, already
            normalized.

    Returns:
        Condensed distance vector of length ``n * (n - 1) / 2``.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2 or data.shape[0] < 2:
        raise AnalysisError("need a 2-D matrix with at least two rows")
    if data.shape[1] == 0:
        raise AnalysisError("need at least one characteristic column")
    return pdist(data, metric="euclidean")


def distance_matrix(condensed: np.ndarray) -> np.ndarray:
    """Square symmetric matrix from a condensed distance vector."""
    return squareform(condensed)


def condensed_index(i: int, j: int, n: int) -> int:
    """Index of pair ``(i, j)`` in a condensed distance vector of ``n``
    items.

    >>> condensed_index(0, 1, 4)
    0

    Raises:
        AnalysisError: if ``i == j`` or either index is out of range.
    """
    if i == j:
        raise AnalysisError("no self-distances in condensed form")
    if not (0 <= i < n and 0 <= j < n):
        raise AnalysisError(f"pair ({i}, {j}) out of range for n={n}")
    if i > j:
        i, j = j, i
    return n * i - i * (i + 1) // 2 + (j - i - 1)
