"""Agglomerative hierarchical clustering with ASCII dendrograms.

The PCA-based prior work the paper builds on (Eeckhout et al.,
Phansalkar et al.) visualizes benchmark similarity with dendrograms
from hierarchical clustering.  This module provides that comparator:
complete/average/single-linkage clustering on the same distance
vectors the rest of the pipeline uses, a flat-cut helper, and a
terminal-friendly dendrogram rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np
from scipy.cluster.hierarchy import dendrogram, fcluster, linkage

from ..errors import AnalysisError

#: Supported linkage methods.
LINKAGE_METHODS = ("single", "complete", "average", "ward")


@dataclass(frozen=True)
class HierarchicalResult:
    """Outcome of hierarchical clustering.

    Attributes:
        linkage_matrix: scipy linkage matrix (``(n-1) x 4``).
        names: item labels, in input row order.
        method: linkage method used.
    """

    linkage_matrix: np.ndarray
    names: "tuple[str, ...]"
    method: str

    def cut(self, k: int) -> Dict[int, List[str]]:
        """Flat clusters from cutting the tree into ``k`` groups.

        Returns:
            cluster id (0-based, ordered by size descending) -> names.
        """
        if not 1 <= k <= len(self.names):
            raise AnalysisError(
                f"k must be in [1, {len(self.names)}], got {k}"
            )
        labels = fcluster(self.linkage_matrix, k, criterion="maxclust")
        groups: Dict[int, List[str]] = {}
        for name, label in zip(self.names, labels):
            groups.setdefault(int(label), []).append(name)
        ordered = sorted(groups.values(), key=len, reverse=True)
        return {index: members for index, members in enumerate(ordered)}

    def merge_heights(self) -> np.ndarray:
        """The distance at which each merge happened (ascending)."""
        return self.linkage_matrix[:, 2].copy()

    def format_dendrogram(self, width: int = 60) -> str:
        """ASCII dendrogram: one leaf per line, join depth as indent.

        Rendering follows the scipy leaf ordering; the horizontal
        position of each leaf's connector encodes the height at which
        it merges into the tree (deeper = more dissimilar).
        """
        order = dendrogram(self.linkage_matrix, no_plot=True)["leaves"]
        heights = self._leaf_merge_heights()
        peak = max(float(heights.max()), 1e-12)
        lines = []
        for leaf in order:
            bar = round(heights[leaf] / peak * (width - 1)) + 1
            lines.append(f"{'-' * bar}+ {self.names[leaf]}")
        return "\n".join(lines)

    def _leaf_merge_heights(self) -> np.ndarray:
        """Height at which each original item first merges."""
        n = len(self.names)
        heights = np.zeros(n)
        for row in self.linkage_matrix:
            left, right, height = int(row[0]), int(row[1]), float(row[2])
            for node in (left, right):
                if node < n and heights[node] == 0.0:
                    heights[node] = height
        return heights


def hierarchical_cluster(
    data: np.ndarray,
    names: Sequence[str],
    method: str = "complete",
) -> HierarchicalResult:
    """Cluster rows of a (normalized) matrix hierarchically.

    Args:
        data: (n x d) matrix, already normalized.
        names: one label per row.
        method: linkage method (one of :data:`LINKAGE_METHODS`).

    Raises:
        AnalysisError: on unknown methods or mismatched names.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2 or len(data) < 2:
        raise AnalysisError("need a 2-D matrix with at least two rows")
    if len(names) != len(data):
        raise AnalysisError("names must match the number of rows")
    if method not in LINKAGE_METHODS:
        raise AnalysisError(
            f"unknown linkage method {method!r}; "
            f"expected one of {LINKAGE_METHODS}"
        )
    matrix = linkage(data, method=method, metric="euclidean")
    return HierarchicalResult(
        linkage_matrix=matrix, names=tuple(names), method=method
    )
