"""Kiviat (radar) plot data preparation and ASCII rendering.

The paper's Figure 6 shows one kiviat plot per benchmark, with the eight
GA-selected characteristics as axes, grouped by cluster.  In a terminal
library the rendering is ASCII: a polygon drawn on a character canvas,
plus a compact bar-table alternative for dense listings.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import AnalysisError


def kiviat_normalize(data: np.ndarray) -> np.ndarray:
    """Min-max normalize each column to [0, 1] across benchmarks.

    Kiviat axes need a bounded radius; constant columns map to 0.5.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise AnalysisError("expected a 2-D matrix")
    low = data.min(axis=0)
    high = data.max(axis=0)
    spread = high - low
    safe = np.where(spread > 0.0, spread, 1.0)
    normalized = (data - low) / safe
    normalized[:, spread == 0.0] = 0.5
    return normalized


def kiviat_ascii(
    values: Sequence[float],
    labels: "Sequence[str] | None" = None,
    radius: int = 9,
    fill_char: str = "*",
) -> str:
    """Render one kiviat polygon on an ASCII canvas.

    Args:
        values: per-axis radii in [0, 1].
        labels: optional axis labels listed under the plot.
        radius: canvas radius in character rows.
        fill_char: marker for the polygon vertices and edges.

    Returns:
        A multi-line string: axes drawn with ``.``, the polygon with
        ``fill_char``, the center with ``+``.
    """
    values = [float(v) for v in values]
    if not values:
        raise AnalysisError("kiviat needs at least one axis")
    if any(not 0.0 <= v <= 1.0 for v in values):
        raise AnalysisError("kiviat values must be within [0, 1]")
    axes = len(values)
    height = 2 * radius + 1
    width = 2 * (2 * radius) + 1  # Terminal cells are ~2x taller than wide.
    canvas = [[" "] * width for _ in range(height)]
    center_row, center_col = radius, 2 * radius

    def plot(row: int, col: int, char: str) -> None:
        if 0 <= row < height and 0 <= col < width:
            canvas[row][col] = char

    def to_cell(angle: float, fraction: float) -> "tuple[int, int]":
        row = center_row - fraction * radius * math.cos(angle)
        col = center_col + fraction * 2 * radius * math.sin(angle)
        return round(row), round(col)

    # Axis rays.
    for axis in range(axes):
        angle = 2.0 * math.pi * axis / axes
        steps = radius * 2
        for step in range(1, steps + 1):
            row, col = to_cell(angle, step / steps)
            plot(row, col, ".")

    # Polygon edges (dense interpolation between consecutive vertices).
    vertices = []
    for axis in range(axes):
        angle = 2.0 * math.pi * axis / axes
        vertices.append(to_cell(angle, values[axis]))
    for start in range(axes):
        end = (start + 1) % axes
        row_a, col_a = vertices[start]
        row_b, col_b = vertices[end]
        segments = max(abs(row_b - row_a), abs(col_b - col_a), 1)
        for step in range(segments + 1):
            t = step / segments
            plot(
                round(row_a + t * (row_b - row_a)),
                round(col_a + t * (col_b - col_a)),
                fill_char,
            )
    plot(center_row, center_col, "+")

    lines = ["".join(row).rstrip() for row in canvas]
    if labels is not None:
        if len(labels) != axes:
            raise AnalysisError("labels must match the number of axes")
        lines.append("")
        for axis, (label, value) in enumerate(zip(labels, values)):
            lines.append(f"  axis {axis + 1}: {label:<28} {value:.2f}")
    return "\n".join(lines)


def kiviat_table(
    names: Sequence[str],
    data: np.ndarray,
    labels: Sequence[str],
    bar_width: int = 10,
) -> str:
    """Compact bar-chart table: one row per benchmark, one bar block
    per axis (a dense alternative to per-benchmark polygons)."""
    data = np.asarray(data, dtype=float)
    if data.ndim != 2 or len(names) != len(data):
        raise AnalysisError("names must match matrix rows")
    if len(labels) != data.shape[1]:
        raise AnalysisError("labels must match matrix columns")
    if (data < 0.0).any() or (data > 1.0).any():
        raise AnalysisError("kiviat table values must be within [0, 1]")
    header = f"{'benchmark':<32}" + "".join(
        f"{label[:bar_width]:<{bar_width + 2}}" for label in labels
    )
    lines = [header]
    for name, row in zip(names, data):
        bars = "".join(
            f"{'#' * round(value * (bar_width - 1)) or '.':<{bar_width + 2}}"
            for value in row
        )
        lines.append(f"{name:<32}{bars}")
    return "\n".join(lines)
