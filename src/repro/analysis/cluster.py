"""Cluster-count selection and benchmark clustering (section VI).

The paper runs k-means for K = 1..70 and keeps the K whose BIC score is
"within 90% of the maximum score".  BIC scores are negative
log-likelihood-based quantities, so the 90% rule is applied to the
min-max normalized score (the SimPoint convention): the smallest K whose
normalized score reaches the threshold wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from .kmeans import KMeansResult, bic_score, kmeans


@dataclass(frozen=True)
class ClusteringResult:
    """Outcome of BIC-guided k-means clustering.

    Attributes:
        k: chosen number of clusters.
        result: the k-means solution at the chosen K.
        bic_by_k: BIC score for every explored K.
        normalized_scores: min-max normalized BIC per explored K.
    """

    k: int
    result: KMeansResult
    bic_by_k: Dict[int, float]
    normalized_scores: Dict[int, float]

    def members(self, cluster: int) -> np.ndarray:
        """Row indices belonging to one cluster."""
        return np.flatnonzero(self.result.assignments == cluster)

    def singleton_clusters(self) -> List[int]:
        """Clusters containing exactly one benchmark."""
        sizes = self.result.cluster_sizes()
        return [int(c) for c in np.flatnonzero(sizes == 1)]


def choose_k(
    data: np.ndarray,
    k_range: Tuple[int, int] = (1, 70),
    score_fraction: float = 0.9,
    seed: int = 0,
    restarts: int = 3,
) -> ClusteringResult:
    """Cluster with the smallest K reaching the BIC score threshold.

    Args:
        data: (n x d) matrix of benchmarks in the reduced space.
        k_range: inclusive K range to explore (paper: 1..70; capped at
            the number of benchmarks).
        score_fraction: normalized-BIC threshold (paper: 0.9).
        seed: RNG seed for all k-means runs.
        restarts: k-means++ restarts per K.

    Raises:
        AnalysisError: on an invalid range or threshold.
    """
    data = np.asarray(data, dtype=float)
    low, high = k_range
    if low < 1 or high < low:
        raise AnalysisError("k_range must satisfy 1 <= low <= high")
    if not 0.0 < score_fraction <= 1.0:
        raise AnalysisError("score_fraction must be in (0, 1]")
    high = min(high, len(data) - 1 if len(data) > 1 else 1)

    solutions: Dict[int, KMeansResult] = {}
    scores: Dict[int, float] = {}
    for k in range(low, high + 1):
        solution = kmeans(data, k, seed=seed + k, restarts=restarts)
        solutions[k] = solution
        scores[k] = bic_score(data, solution)

    values = np.array([scores[k] for k in sorted(scores)])
    finite = values[np.isfinite(values)]
    if len(finite) == 0:
        raise AnalysisError("no finite BIC score in the explored range")
    lowest, highest = float(finite.min()), float(finite.max())
    spread = highest - lowest
    normalized: Dict[int, float] = {}
    for k, score in scores.items():
        if not np.isfinite(score):
            normalized[k] = 0.0
        elif spread == 0.0:
            normalized[k] = 1.0
        else:
            normalized[k] = (score - lowest) / spread

    chosen = min(
        (k for k in sorted(scores) if normalized[k] >= score_fraction),
        default=max(scores, key=lambda k: scores[k]),
    )
    return ClusteringResult(
        k=chosen,
        result=solutions[chosen],
        bic_by_k=scores,
        normalized_scores=normalized,
    )


def cluster_benchmarks(
    data: np.ndarray,
    names: Sequence[str],
    k_range: Tuple[int, int] = (1, 70),
    score_fraction: float = 0.9,
    seed: int = 0,
) -> "tuple[ClusteringResult, Dict[int, List[str]]]":
    """Cluster and return the membership by benchmark name.

    Returns:
        ``(clustering, members)`` where ``members[c]`` lists the names
        in cluster ``c`` (clusters ordered by descending size).
    """
    if len(names) != len(data):
        raise AnalysisError("names must match the number of rows")
    clustering = choose_k(
        data, k_range=k_range, score_fraction=score_fraction, seed=seed
    )
    members: Dict[int, List[str]] = {}
    for cluster in range(clustering.result.k):
        indices = clustering.members(cluster)
        members[cluster] = [names[i] for i in indices]
    return clustering, members
