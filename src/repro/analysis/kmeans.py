"""K-means clustering and the Bayesian Information Criterion.

The paper clusters the 122 benchmarks in the reduced 8-dimensional
workload space with k-means, choosing K by the BIC score (Sherwood et
al. / Pelleg & Moore formulation): the smallest K whose score reaches
90% of the maximum over K = 1..70.

The implementation uses k-means++ seeding with multiple restarts and is
fully deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class KMeansResult:
    """One k-means solution.

    Attributes:
        k: number of clusters.
        assignments: cluster index per point.
        centers: (k x d) cluster centroids.
        inertia: total within-cluster squared distance.
    """

    k: int
    assignments: np.ndarray
    centers: np.ndarray
    inertia: float

    def cluster_sizes(self) -> np.ndarray:
        """Point count per cluster."""
        return np.bincount(self.assignments, minlength=self.k)


def _kmeans_plus_plus(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding."""
    n = len(data)
    centers = np.empty((k, data.shape[1]))
    first = int(rng.integers(n))
    centers[0] = data[first]
    closest_sq = ((data - centers[0]) ** 2).sum(axis=1)
    for index in range(1, k):
        total = closest_sq.sum()
        if total <= 0.0:
            # All remaining points coincide with a center already.
            centers[index:] = data[int(rng.integers(n))]
            break
        probabilities = closest_sq / total
        choice = int(rng.choice(n, p=probabilities))
        centers[index] = data[choice]
        distance_sq = ((data - centers[index]) ** 2).sum(axis=1)
        np.minimum(closest_sq, distance_sq, out=closest_sq)
    return centers


def _lloyd(
    data: np.ndarray,
    centers: np.ndarray,
    max_iterations: int,
) -> "tuple[np.ndarray, np.ndarray, float]":
    """Lloyd iterations; returns (assignments, centers, inertia)."""
    k = len(centers)
    assignments = np.zeros(len(data), dtype=np.int64)
    for _ in range(max_iterations):
        # Squared distances to every center.
        distances = (
            (data[:, None, :] - centers[None, :, :]) ** 2
        ).sum(axis=2)
        new_assignments = distances.argmin(axis=1)
        if np.array_equal(new_assignments, assignments):
            assignments = new_assignments
            break
        assignments = new_assignments
        for cluster in range(k):
            members = data[assignments == cluster]
            if len(members):
                centers[cluster] = members.mean(axis=0)
    distances = ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    inertia = float(distances[np.arange(len(data)), assignments].sum())
    return assignments, centers, inertia


def kmeans(
    data: np.ndarray,
    k: int,
    seed: int = 0,
    restarts: int = 5,
    max_iterations: int = 100,
) -> KMeansResult:
    """Cluster rows of ``data`` into ``k`` clusters.

    Runs ``restarts`` independent k-means++ initializations and keeps
    the lowest-inertia solution.

    Raises:
        AnalysisError: if ``k`` is not within ``[1, n]``.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2 or len(data) == 0:
        raise AnalysisError("kmeans needs a non-empty 2-D matrix")
    if not 1 <= k <= len(data):
        raise AnalysisError(f"k must be in [1, {len(data)}], got {k}")
    rng = np.random.default_rng(seed)
    best: "KMeansResult | None" = None
    for _ in range(max(restarts, 1)):
        centers = _kmeans_plus_plus(data, k, rng)
        assignments, centers, inertia = _lloyd(
            data, centers.copy(), max_iterations
        )
        if best is None or inertia < best.inertia:
            best = KMeansResult(
                k=k, assignments=assignments, centers=centers, inertia=inertia
            )
    assert best is not None
    return best


def bic_score(data: np.ndarray, result: KMeansResult) -> float:
    """BIC of a k-means solution (spherical-Gaussian likelihood).

    Uses the Pelleg & Moore (X-means) formulation also used by SimPoint:
    maximum-likelihood pooled variance, per-cluster log-likelihood, and
    a ``(p / 2) log R`` complexity penalty with ``p = K (d + 1)`` free
    parameters.  Larger is better.
    """
    data = np.asarray(data, dtype=float)
    n, d = data.shape
    k = result.k
    if n <= k:
        # Degenerate: every point its own cluster; maximal complexity.
        return -np.inf
    residual_sq = 0.0
    for cluster in range(k):
        members = data[result.assignments == cluster]
        if len(members):
            residual_sq += (
                ((members - result.centers[cluster]) ** 2).sum()
            )
    variance = residual_sq / (d * (n - k))
    variance = max(variance, 1e-12)

    log_likelihood = 0.0
    sizes = result.cluster_sizes()
    for cluster in range(k):
        size = int(sizes[cluster])
        if size == 0:
            continue
        log_likelihood += (
            size * np.log(size / n)
            - size * d / 2.0 * np.log(2.0 * np.pi * variance)
            - (size - 1) * d / 2.0
        )
    parameters = k * (d + 1)
    return float(log_likelihood - parameters / 2.0 * np.log(n))
