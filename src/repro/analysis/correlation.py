"""Pearson correlation utilities."""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient of two equal-length vectors.

    Constant vectors have undefined correlation; this returns 0.0 for
    them (no linear association measurable), which is the safe value in
    every use within this library.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise AnalysisError("pearson needs two equal-length 1-D vectors")
    if len(x) < 2:
        raise AnalysisError("pearson needs at least two observations")
    x_centered = x - x.mean()
    y_centered = y - y.mean()
    denominator = np.sqrt((x_centered**2).sum() * (y_centered**2).sum())
    if denominator == 0.0:
        return 0.0
    return float((x_centered * y_centered).sum() / denominator)


def correlation_matrix(data: np.ndarray) -> np.ndarray:
    """Column-by-column Pearson correlation matrix.

    Constant columns yield zero correlation with everything (and, by
    convention, 1.0 on their own diagonal entry).
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2 or data.shape[0] < 2:
        raise AnalysisError("need a 2-D matrix with at least two rows")
    centered = data - data.mean(axis=0)
    std = centered.std(axis=0)
    safe = np.where(std > 0.0, std, 1.0)
    scaled = centered / safe
    matrix = scaled.T @ scaled / data.shape[0]
    constant = std == 0.0
    matrix[constant, :] = 0.0
    matrix[:, constant] = 0.0
    np.fill_diagonal(matrix, 1.0)
    return matrix
