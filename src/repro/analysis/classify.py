"""Benchmark-tuple quadrant classification (section IV, Table III).

Every benchmark tuple (unordered pair) is classified by whether its
distance is *large* (> threshold fraction of the maximum observed
distance) in the hardware-performance-counter space and in the
microarchitecture-independent space:

===============================  =============================  ==========
HPC space                        microarch-independent space    category
===============================  =============================  ==========
large                            large                          true positive
large                            small                          false negative
small                            large                          false positive
small                            small                          true negative
===============================  =============================  ==========

A large false-positive fraction is the paper's headline pitfall:
benchmarks that look similar on hardware counters but behave differently
inherently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class QuadrantFractions:
    """Fractions of benchmark tuples per category (they sum to one)."""

    true_positive: float
    false_negative: float
    false_positive: float
    true_negative: float
    tuples: int

    def format(self) -> str:
        """Render in the layout of the paper's Table III."""
        rows = [
            ("large distance in HPC space",
             self.false_negative, self.true_positive),
            ("small distance in HPC space",
             self.true_negative, self.false_positive),
        ]
        header = (
            f"{'':<30} {'small uarch-indep dist':>24} "
            f"{'large uarch-indep dist':>24}"
        )
        lines = [header]
        labels = [("false negative", "true positive"),
                  ("true negative", "false positive")]
        for (title, small, large), (small_label, large_label) in zip(
            rows, labels
        ):
            lines.append(
                f"{title:<30} {small_label + ': ' + format(small, '.1%'):>24} "
                f"{large_label + ': ' + format(large, '.1%'):>24}"
            )
        return "\n".join(lines)


def classify_quadrants(
    reference_distances: np.ndarray,
    candidate_distances: np.ndarray,
    reference_threshold_fraction: float = 0.2,
    candidate_threshold_fraction: float = 0.2,
) -> QuadrantFractions:
    """Classify all benchmark tuples into the four categories.

    Args:
        reference_distances: condensed HPC-space distances.
        candidate_distances: condensed microarchitecture-independent
            distances (same pair order).
        reference_threshold_fraction: "large" cutoff in the reference
            space, as a fraction of its maximum distance (paper: 20%).
        candidate_threshold_fraction: likewise for the candidate space.
    """
    reference = np.asarray(reference_distances, dtype=float)
    candidate = np.asarray(candidate_distances, dtype=float)
    if reference.shape != candidate.shape or reference.ndim != 1:
        raise AnalysisError("distance vectors must have identical shape")
    if len(reference) == 0:
        raise AnalysisError("no benchmark tuples to classify")
    for fraction in (reference_threshold_fraction, candidate_threshold_fraction):
        if not 0.0 < fraction < 1.0:
            raise AnalysisError("threshold fractions must be in (0, 1)")

    reference_large = reference > reference_threshold_fraction * reference.max()
    candidate_large = candidate > candidate_threshold_fraction * candidate.max()

    total = float(len(reference))
    return QuadrantFractions(
        true_positive=float((reference_large & candidate_large).sum()) / total,
        false_negative=float((reference_large & ~candidate_large).sum()) / total,
        false_positive=float((~reference_large & candidate_large).sum()) / total,
        true_negative=float((~reference_large & ~candidate_large).sum()) / total,
        tuples=len(reference),
    )
