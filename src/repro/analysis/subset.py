"""Benchmark-suite subsetting: pick representatives, measure coverage.

The paper's motivation ("if the new workload domain is not
significantly different ... there is no need for including those
benchmarks in the design process — simulating those additional
benchmarks would only add to the overall simulation time") leads
directly to subsetting: keep one representative per behavior cluster
and quantify how faithfully the subset stands in for the full suite
(Eeckhout et al. IISWC 2005; Vandierendonck & De Bosschere WWC 2004).

Representatives are the benchmarks closest to their cluster centroid;
coverage is evaluated both geometrically (how far is every dropped
benchmark from its representative) and, when a metric matrix such as
the HPC data is supplied, by how well representative metrics predict
suite-wide averages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import AnalysisError
from .kmeans import KMeansResult


@dataclass(frozen=True)
class SubsetResult:
    """A representative subset and its coverage statistics.

    Attributes:
        representatives: selected row indices, one per cluster,
            ordered by cluster size descending.
        cluster_of: cluster index per benchmark row.
        max_distance: largest benchmark-to-representative distance.
        mean_distance: average benchmark-to-representative distance.
        weights: per-representative weight (its cluster's population
            share) for weighted suite-level estimates.
    """

    representatives: "tuple[int, ...]"
    cluster_of: np.ndarray
    max_distance: float
    mean_distance: float
    weights: np.ndarray

    @property
    def size(self) -> int:
        return len(self.representatives)

    def weighted_estimate(self, metrics: np.ndarray) -> np.ndarray:
        """Suite-level metric estimate from representatives only.

        Args:
            metrics: (n benchmarks x m metrics) matrix.

        Returns:
            Weighted average of the representatives' rows — the
            subsetting literature's estimator for suite means.
        """
        metrics = np.asarray(metrics, dtype=float)
        if metrics.ndim != 2 or len(metrics) != len(self.cluster_of):
            raise AnalysisError("metrics rows must match the population")
        selected = metrics[list(self.representatives)]
        return (self.weights[:, None] * selected).sum(axis=0)

    def estimation_error(self, metrics: np.ndarray) -> np.ndarray:
        """Relative error of :meth:`weighted_estimate` vs the true
        suite mean, per metric (0 where the true mean is 0)."""
        metrics = np.asarray(metrics, dtype=float)
        estimate = self.weighted_estimate(metrics)
        truth = metrics.mean(axis=0)
        errors = np.zeros_like(truth)
        nonzero = truth != 0.0
        errors[nonzero] = np.abs(
            (estimate[nonzero] - truth[nonzero]) / truth[nonzero]
        )
        return errors


def select_representatives(
    data: np.ndarray,
    clustering: KMeansResult,
) -> SubsetResult:
    """Pick the centroid-nearest benchmark of every cluster.

    Args:
        data: the (n x d) matrix the clustering was computed on.
        clustering: a k-means solution over ``data``.

    Raises:
        AnalysisError: if shapes disagree.
    """
    data = np.asarray(data, dtype=float)
    if len(data) != len(clustering.assignments):
        raise AnalysisError("data rows must match clustering assignments")

    order = np.argsort(clustering.cluster_sizes())[::-1]
    representatives: List[int] = []
    weights: List[float] = []
    n = len(data)
    distances_to_rep = np.zeros(n)
    for cluster in order:
        member_indices = np.flatnonzero(clustering.assignments == cluster)
        if len(member_indices) == 0:
            continue
        members = data[member_indices]
        center = clustering.centers[cluster]
        member_distances = np.linalg.norm(members - center, axis=1)
        representative = int(member_indices[int(np.argmin(member_distances))])
        representatives.append(representative)
        weights.append(len(member_indices) / n)
        rep_distances = np.linalg.norm(
            members - data[representative], axis=1
        )
        distances_to_rep[member_indices] = rep_distances

    return SubsetResult(
        representatives=tuple(representatives),
        cluster_of=clustering.assignments.copy(),
        max_distance=float(distances_to_rep.max()),
        mean_distance=float(distances_to_rep.mean()),
        weights=np.array(weights),
    )


def format_subset(
    result: SubsetResult, names: Sequence[str]
) -> str:
    """Human-readable subset listing."""
    if len(names) != len(result.cluster_of):
        raise AnalysisError("names must match the population")
    lines = [
        f"representative subset: {result.size} of {len(names)} benchmarks",
        f"mean distance to representative: {result.mean_distance:.3f}",
        f"max distance to representative : {result.max_distance:.3f}",
    ]
    for representative, weight in zip(result.representatives, result.weights):
        lines.append(
            f"  {names[representative]:<44} weight {weight:.3f}"
        )
    return "\n".join(lines)
