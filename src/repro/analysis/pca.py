"""Principal components analysis — the prior-work baseline.

The paper positions its characteristic-*selection* methods against PCA
(Eeckhout et al., Phansalkar et al.): PCA also reduces dimensionality,
but its dimensions are linear combinations of all characteristics, so
(i) every characteristic must still be measured and (ii) the dimensions
are harder to interpret.  This implementation exists to reproduce that
comparison (ablation benches) and uses the covariance eigendecomposition
on z-scored data.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError


class PCA:
    """Principal components analysis over benchmarks x characteristics.

    Args:
        n_components: how many components to keep (all by default).

    Attributes (after :meth:`fit`):
        components: (n_components x d) row-wise principal directions.
        explained_variance: eigenvalues, descending.
        explained_variance_ratio: eigenvalues / total variance.
    """

    def __init__(self, n_components: "int | None" = None):
        self.n_components = n_components
        self.components: "np.ndarray | None" = None
        self.explained_variance: "np.ndarray | None" = None
        self.explained_variance_ratio: "np.ndarray | None" = None
        self._mean: "np.ndarray | None" = None

    def fit(self, data: np.ndarray) -> "PCA":
        """Fit on a (n x d) matrix (rows are benchmarks)."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] < 2:
            raise AnalysisError("PCA needs a 2-D matrix with >= 2 rows")
        n, d = data.shape
        self._mean = data.mean(axis=0)
        centered = data - self._mean
        covariance = centered.T @ centered / (n - 1)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = np.clip(eigenvalues[order], 0.0, None)
        eigenvectors = eigenvectors[:, order]
        keep = self.n_components or d
        keep = min(keep, d)
        self.components = eigenvectors[:, :keep].T
        self.explained_variance = eigenvalues[:keep]
        total = eigenvalues.sum()
        self.explained_variance_ratio = (
            self.explained_variance / total if total > 0 else
            np.zeros_like(self.explained_variance)
        )
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project data onto the fitted components."""
        if self.components is None or self._mean is None:
            raise AnalysisError("PCA must be fitted before transform")
        data = np.asarray(data, dtype=float)
        return (data - self._mean) @ self.components.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit, then project the same data."""
        return self.fit(data).transform(data)

    def components_for_variance(self, fraction: float) -> int:
        """Smallest component count explaining >= ``fraction`` of
        variance.

        Raises:
            AnalysisError: if unfitted or ``fraction`` not in (0, 1].
        """
        if self.explained_variance_ratio is None:
            raise AnalysisError("PCA must be fitted first")
        if not 0.0 < fraction <= 1.0:
            raise AnalysisError("fraction must be in (0, 1]")
        cumulative = np.cumsum(self.explained_variance_ratio)
        return int(np.searchsorted(cumulative, fraction) + 1)
