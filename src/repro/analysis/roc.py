"""ROC evaluation of workload-characterization methods (section V-D).

The ground truth for a benchmark tuple is whether its distance in the
hardware-performance-counter space is *large* (beyond a fixed fraction
of the maximum observed distance).  A characterization method "detects"
a tuple by its distance in the microarchitecture-independent space
exceeding a sweepable threshold.  Sweeping that threshold traces the ROC
curve:

* sensitivity (true-positive rate): fraction of HPC-large tuples that
  are also large in the microarchitecture-independent space;
* specificity: fraction of HPC-small tuples that are also small there.

The paper plots sensitivity against (1 - specificity) and compares
methods by area under the curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class RocCurve:
    """One ROC curve.

    Attributes:
        false_positive_rate: x coordinates (1 - specificity), ascending.
        true_positive_rate: matching y coordinates (sensitivity).
        thresholds: microarchitecture-independent distance threshold per
            point (same order as the coordinates).
    """

    false_positive_rate: np.ndarray
    true_positive_rate: np.ndarray
    thresholds: np.ndarray

    @property
    def area(self) -> float:
        """Area under the curve (trapezoidal)."""
        return auc(self.false_positive_rate, self.true_positive_rate)


def roc_curve(
    reference_distances: np.ndarray,
    candidate_distances: np.ndarray,
    reference_threshold_fraction: float = 0.2,
    points: int = 101,
) -> RocCurve:
    """ROC of a candidate space against the reference (HPC) space.

    Args:
        reference_distances: condensed distances in the reference space
            (defines the positive class via the fixed threshold).
        candidate_distances: condensed distances in the candidate
            microarchitecture-independent space (swept).
        reference_threshold_fraction: the paper's fixed 20%-of-maximum
            classification threshold in the reference space.
        points: number of sweep points across the candidate range.

    Raises:
        AnalysisError: on length mismatch or a degenerate reference
            space (all tuples on one side of the threshold).
    """
    reference = np.asarray(reference_distances, dtype=float)
    candidate = np.asarray(candidate_distances, dtype=float)
    if reference.shape != candidate.shape or reference.ndim != 1:
        raise AnalysisError("distance vectors must have identical shape")
    if len(reference) < 2:
        raise AnalysisError("need at least two benchmark tuples")
    if not 0.0 < reference_threshold_fraction < 1.0:
        raise AnalysisError("reference_threshold_fraction must be in (0,1)")

    positive = reference > reference_threshold_fraction * reference.max()
    n_positive = int(positive.sum())
    n_negative = len(reference) - n_positive
    if n_positive == 0 or n_negative == 0:
        raise AnalysisError(
            "degenerate reference space: all tuples fall on one side of "
            "the threshold"
        )

    # Sweep from above-max (nothing flagged) down to just below zero
    # (everything flagged, including zero-distance tuples).
    maximum = float(candidate.max())
    thresholds = np.linspace(maximum * 1.0001, 0.0, points)
    thresholds[-1] = -1e-12
    tpr = np.empty(points)
    fpr = np.empty(points)
    for index, threshold in enumerate(thresholds):
        flagged = candidate > threshold
        tpr[index] = float((flagged & positive).sum()) / n_positive
        fpr[index] = float((flagged & ~positive).sum()) / n_negative
    return RocCurve(
        false_positive_rate=fpr, true_positive_rate=tpr, thresholds=thresholds
    )


def auc(x: np.ndarray, y: np.ndarray) -> float:
    """Trapezoidal area under a curve given by point sequences.

    Points are sorted by x first, so curves may be supplied in any
    sweep direction.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or len(x) < 2:
        raise AnalysisError("auc needs two equal-length vectors (>= 2)")
    order = np.argsort(x, kind="stable")
    x_sorted = x[order]
    y_sorted = y[order]
    widths = np.diff(x_sorted)
    return float((widths * (y_sorted[1:] + y_sorted[:-1]) / 2.0).sum())
