"""Statistical analysis pipeline.

Everything downstream of characterization: normalization, pairwise
distances, correlation, the two dimensionality-reduction methods the
paper proposes (correlation elimination and the genetic algorithm), the
PCA baseline it compares against, ROC evaluation, the Table III quadrant
classification, k-means clustering with BIC-based K selection, and
kiviat-plot data preparation.
"""

from .normalize import zscore, max_normalize
from .distance import pairwise_distances, distance_matrix, condensed_index
from .correlation import pearson, correlation_matrix
from .pca import PCA
from .corr_elim import correlation_elimination_order, retain_by_correlation
from .genetic import GAResult, GeneticSelector
from .roc import RocCurve, roc_curve, auc
from .classify import QuadrantFractions, classify_quadrants
from .kmeans import KMeansResult, kmeans, bic_score
from .cluster import ClusteringResult, choose_k, cluster_benchmarks
from .hierarchical import (
    HierarchicalResult,
    LINKAGE_METHODS,
    hierarchical_cluster,
)
from .subset import SubsetResult, format_subset, select_representatives
from .kiviat import kiviat_normalize, kiviat_ascii, kiviat_table

__all__ = [
    "zscore",
    "max_normalize",
    "pairwise_distances",
    "distance_matrix",
    "condensed_index",
    "pearson",
    "correlation_matrix",
    "PCA",
    "correlation_elimination_order",
    "retain_by_correlation",
    "GAResult",
    "GeneticSelector",
    "RocCurve",
    "roc_curve",
    "auc",
    "QuadrantFractions",
    "classify_quadrants",
    "KMeansResult",
    "kmeans",
    "bic_score",
    "ClusteringResult",
    "choose_k",
    "cluster_benchmarks",
    "HierarchicalResult",
    "LINKAGE_METHODS",
    "hierarchical_cluster",
    "SubsetResult",
    "format_subset",
    "select_representatives",
    "kiviat_normalize",
    "kiviat_ascii",
    "kiviat_table",
]
