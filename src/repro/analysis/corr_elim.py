"""Correlation elimination (section V-A of the paper).

For each characteristic, compute its average absolute correlation with
all other (remaining) characteristics; remove the one with the highest
average — it carries the least additional information — and iterate.
The removal order induces, for every target dimensionality ``k``, the
set of ``k`` retained characteristics.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import AnalysisError
from .correlation import correlation_matrix


def correlation_elimination_order(
    data: np.ndarray, ranking: str = "mean"
) -> List[int]:
    """Column indices in elimination order (first removed first).

    Args:
        data: (n benchmarks x d characteristics) matrix.
        ranking: ``"mean"`` removes the highest average |r| (the
            paper's rule); ``"max"`` removes the highest maximum |r|
            (an ablation variant).

    Returns:
        A list of all ``d`` column indices; eliminating a prefix of
        length ``d - k`` leaves the ``k`` best characteristics.
    """
    if ranking not in ("mean", "max"):
        raise AnalysisError(f"unknown ranking rule: {ranking!r}")
    matrix = np.abs(correlation_matrix(data))
    np.fill_diagonal(matrix, 0.0)
    d = matrix.shape[0]
    remaining = list(range(d))
    order: List[int] = []
    while len(remaining) > 1:
        sub = matrix[np.ix_(remaining, remaining)]
        if ranking == "mean":
            scores = sub.sum(axis=1) / (len(remaining) - 1)
        else:
            scores = sub.max(axis=1)
        victim_position = int(np.argmax(scores))
        order.append(remaining.pop(victim_position))
    order.append(remaining.pop())
    return order


def retain_by_correlation(
    data: np.ndarray, keep: int, ranking: str = "mean"
) -> List[int]:
    """The ``keep`` characteristic indices retained by correlation
    elimination, in ascending index order.

    Raises:
        AnalysisError: if ``keep`` is not within ``[1, d]``.
    """
    d = np.asarray(data).shape[1]
    if not 1 <= keep <= d:
        raise AnalysisError(f"keep must be in [1, {d}], got {keep}")
    order = correlation_elimination_order(data, ranking=ranking)
    retained = order[d - keep:]
    return sorted(retained)
