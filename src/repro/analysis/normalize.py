"""Data-set normalization.

The paper puts all characteristics on a common scale before computing
distances: "the mean is zero and the standard deviation is one for all
characteristics across all benchmarks" (z-score normalization).  For the
per-benchmark comparison figures (Figures 2 and 3) it instead divides
each characteristic by the maximum observed value.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError


def _check_matrix(data: np.ndarray) -> np.ndarray:
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise AnalysisError(f"expected a 2-D matrix, got shape {data.shape}")
    if data.shape[0] < 2:
        raise AnalysisError("need at least two rows (benchmarks)")
    return data


def zscore(data: np.ndarray) -> np.ndarray:
    """Column-wise z-score normalization (benchmarks in rows).

    Columns with zero variance carry no information about benchmark
    differences and are mapped to all-zeros rather than NaN.
    """
    data = _check_matrix(data)
    mean = data.mean(axis=0)
    std = data.std(axis=0)
    # A column whose deviation is at rounding-noise level relative to
    # its magnitude is constant for all practical purposes; mapping it
    # through 1/std would amplify float noise into fake structure.
    scale = np.maximum(np.abs(mean), 1.0)
    constant = std <= 1e-9 * scale
    safe_std = np.where(constant, 1.0, std)
    normalized = (data - mean) / safe_std
    normalized[:, constant] = 0.0
    return normalized


def max_normalize(data: np.ndarray) -> np.ndarray:
    """Column-wise division by the maximum absolute value (Figure 2/3
    style).  All-zero columns stay zero."""
    data = _check_matrix(data)
    peak = np.abs(data).max(axis=0)
    safe_peak = np.where(peak > 0.0, peak, 1.0)
    return data / safe_peak
