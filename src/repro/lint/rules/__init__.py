"""The rule registry for ``repro.lint``.

Each rule mechanizes one prose invariant from ROADMAP.md; see the
individual rule modules for the full rationale.  :func:`default_rules`
returns fresh instances of every registered rule in deterministic
order; :func:`rule_by_id` resolves a single rule for ``--explain``.
"""

from __future__ import annotations

from typing import List

from ..model import LintUsageError
from .base import Rule, rule_ids
from .dead_code import DeadCodeRule
from .determinism import DeterminismRule
from .durability import DurabilityRule
from .locks import LockDisciplineRule
from .typed_errors import TypedErrorsRule
from .vectorization import VectorizationRule
from .versions import VersionCouplingRule

__all__ = [
    "Rule",
    "rule_ids",
    "DeadCodeRule",
    "DeterminismRule",
    "DurabilityRule",
    "LockDisciplineRule",
    "TypedErrorsRule",
    "VectorizationRule",
    "VersionCouplingRule",
    "default_rules",
    "rule_by_id",
]

#: Registered rule classes in report order.
_RULE_CLASSES = (
    DeterminismRule,
    VectorizationRule,
    DurabilityRule,
    LockDisciplineRule,
    TypedErrorsRule,
    VersionCouplingRule,
    DeadCodeRule,
)


def default_rules() -> "List[Rule]":
    """Fresh instances of every registered rule, in report order."""
    return [rule_class() for rule_class in _RULE_CLASSES]


def rule_by_id(rule_id: str) -> Rule:
    """Resolve one rule by id (for ``repro lint --explain``).

    Raises:
        LintUsageError: no registered rule has that id.
    """
    for rule in default_rules():
        if rule.id == rule_id:
            return rule
    known = ", ".join(rule.id for rule in default_rules())
    raise LintUsageError(
        f"unknown rule {rule_id!r}; known rules: {known}"
    )
