"""The *lock-discipline* rule: a lightweight static race detector.

For each class in ``repro.service`` / ``repro.perf.journal`` the rule
infers which ``self.<attr>`` attributes are lock-protected — any
attribute mutated inside a ``with self.<lock>:`` block (an attribute
whose name contains ``lock``) or inside a ``*_locked`` helper method —
and then flags mutations of those same attributes outside any lock.
``__init__``-family methods are exempt (no concurrent access before
construction completes), as are ``*_locked`` helpers (the suffix is the
repo's documented caller-holds-the-lock convention, see
``repro.service.breaker``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, List, Set

from ..engine import LintProject, ModuleSource
from ..model import Finding
from .base import Rule

#: Method names assumed to mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "update",
        "clear",
        "pop",
        "popitem",
        "add",
        "remove",
        "discard",
        "insert",
        "setdefault",
        "appendleft",
        "popleft",
    }
)

#: Methods where unlocked mutation is fine: the object is not shared
#: yet (construction) or the caller holds the lock by convention.
EXEMPT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


@dataclass(frozen=True)
class Mutation:
    """One ``self.<attr>`` mutation site inside a class body."""

    attr: str
    line: int
    col: int
    method: str
    locked: bool
    description: str


class LockDisciplineRule(Rule):
    """Flag unlocked mutations of lock-protected attributes."""

    id = "lock-discipline"
    summary = (
        "attributes mutated under a lock must never be mutated outside "
        "one"
    )
    explanation = (
        "Within each class in src/repro/service and "
        "src/repro/perf/journal.py, any self-attribute mutated inside a "
        "'with self.<lock>:' block (or inside a *_locked helper) is "
        "inferred to be lock-protected shared state.  A mutation of "
        "that attribute outside a lock is a data race: concurrent "
        "handler threads can interleave read-modify-write sequences and "
        "lose updates.  __init__/__new__/__post_init__ are exempt (the "
        "instance is not yet shared) and *_locked methods are exempt "
        "(the suffix documents that the caller holds the lock)."
    )
    scopes = ("src/repro/service/", "src/repro/perf/journal.py")

    def check_module(
        self, module: ModuleSource, project: LintProject
    ) -> "Iterable[Finding]":
        if not self.applies_to(module):
            return ()
        findings: "List[Finding]" = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    def _check_class(
        self, module: ModuleSource, class_node: ast.ClassDef
    ) -> "List[Finding]":
        mutations: "List[Mutation]" = []
        for item in class_node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                collector = _MutationCollector(item.name)
                collector.visit_body(item.body)
                mutations.extend(collector.mutations)
        protected: "Set[str]" = {
            mutation.attr
            for mutation in mutations
            if mutation.locked or mutation.method.endswith("_locked")
        }
        findings: "List[Finding]" = []
        for mutation in mutations:
            if mutation.attr not in protected:
                continue
            if mutation.locked:
                continue
            if mutation.method in EXEMPT_METHODS:
                continue
            if mutation.method.endswith("_locked"):
                continue
            findings.append(
                self.finding(
                    module,
                    mutation.line,
                    mutation.col,
                    f"{class_node.name}.{mutation.method} mutates "
                    f"self.{mutation.attr} ({mutation.description}) "
                    "outside the lock that protects it elsewhere; "
                    "take the lock or move this into a *_locked helper",
                )
            )
        return findings


class _MutationCollector:
    """Collect ``self.<attr>`` mutations in one method, tracking
    whether each sits inside a ``with self.<lock>:`` block."""

    def __init__(self, method: str) -> None:
        self.method = method
        self.mutations: "List[Mutation]" = []
        self._lock_depth = 0

    def visit_body(self, body: "List[ast.stmt]") -> None:
        for statement in body:
            self._visit(statement)

    def _visit(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            holds_lock = any(
                _is_self_lock(item.context_expr) for item in node.items
            )
            if holds_lock:
                self._lock_depth += 1
            self.visit_body(node.body)
            if holds_lock:
                self._lock_depth -= 1
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs run later, possibly on another thread; their
            # mutations are analyzed with the lock state reset.
            inner = _MutationCollector(self.method)
            inner.visit_body(node.body)
            self.mutations.extend(inner.mutations)
            return
        self._record_targets(node)
        self._visit_children(node)

    def _visit_children(self, node: ast.AST) -> None:
        """Recurse: statements via :meth:`_visit`, expressions scanned
        for mutating calls, other containers (except handlers, match
        cases, ...) unwrapped."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._visit(child)
            elif isinstance(child, ast.expr):
                self._scan_calls(child)
            else:
                self._visit_children(child)

    def _scan_calls(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._record_mutating_call(sub)

    def _record_targets(self, node: ast.stmt) -> None:
        targets: "List[ast.expr]" = []
        description = "assignment"
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
            description = "augmented assignment"
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
            description = "deletion"
        for target in targets:
            attr = _self_attr_target(target)
            if attr is not None:
                self.mutations.append(
                    Mutation(
                        attr=attr,
                        line=node.lineno,
                        col=node.col_offset,
                        method=self.method,
                        locked=self._lock_depth > 0,
                        description=description,
                    )
                )

    def _record_mutating_call(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
        ):
            return
        receiver = func.value
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
        ):
            self.mutations.append(
                Mutation(
                    attr=receiver.attr,
                    line=node.lineno,
                    col=node.col_offset,
                    method=self.method,
                    locked=self._lock_depth > 0,
                    description=f".{func.attr}() call",
                )
            )


def _is_self_lock(node: ast.expr) -> bool:
    """``self.<attr>`` (or ``self.<attr>.acquire-style`` calls) where
    the attribute name contains 'lock'."""
    if isinstance(node, ast.Call):
        node = node.func
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and "lock" in node.attr.lower()
    )


def _self_attr_target(node: ast.expr) -> "str | None":
    """The attribute name mutated by a ``self.X``/``self.X[...]``
    assignment target (None for non-self targets)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            attr = _self_attr_target(element)
            if attr is not None:
                return attr
    return None
