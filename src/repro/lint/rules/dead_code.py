"""The *dead-code* rule: no unused imports, no dead ``__all__``
entries.

An import nothing reads is noise that rots into a false dependency; an
``__all__`` entry naming nothing confuses both ``import *`` and the
docs-contract tests.  The rule counts a binding as used when its name
appears in any Load context, in a string annotation (quoted forward
references are parsed), or as a string inside ``__all__`` (re-export).
Package ``__init__`` modules are exempt from the unused-import check —
their imports *are* the public re-export surface.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from ..engine import LintProject, ModuleSource
from ..model import Finding
from .base import Rule


class DeadCodeRule(Rule):
    """Flag unused imports and ``__all__`` entries naming nothing."""

    id = "dead-code"
    summary = "no unused imports or dead __all__ entries"
    explanation = (
        "An import never referenced in the module (including inside "
        "quoted string annotations and __all__ re-export lists) is "
        "dead weight and a false dependency edge; an __all__ entry "
        "that names no module-level binding breaks 'from m import *' "
        "and the docs contract.  Package __init__.py files are exempt "
        "from the unused-import check because their imports define the "
        "re-export surface."
    )
    severity = "warning"

    def check_module(
        self, module: ModuleSource, project: LintProject
    ) -> "Iterable[Finding]":
        findings: "List[Finding]" = []
        used = _used_names(module.tree)
        if not module.path.endswith("__init__.py"):
            for name, full, (line, col) in _imported_bindings(
                module.tree
            ):
                if name not in used:
                    findings.append(
                        self.finding(
                            module,
                            line,
                            col,
                            f"import {full} is never used in this "
                            "module; remove it",
                        )
                    )
        bound = _toplevel_bindings(module.tree)
        for entry, (line, col) in _dunder_all_entries(module.tree):
            if entry not in bound:
                findings.append(
                    self.finding(
                        module,
                        line,
                        col,
                        f"__all__ entry {entry!r} names no module-"
                        "level binding; remove it or define the name",
                    )
                )
        return findings


def _imported_bindings(
    tree: ast.Module,
) -> "List[Tuple[str, str, Tuple[int, int]]]":
    """(bound name, display name, location) for every import binding."""
    bindings: "List[Tuple[str, str, Tuple[int, int]]]" = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                display = alias.name + (
                    f" as {alias.asname}" if alias.asname else ""
                )
                bindings.append(
                    (bound, display, (node.lineno, node.col_offset))
                )
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                display = alias.name + (
                    f" as {alias.asname}" if alias.asname else ""
                )
                if bound == "annotations" and node.module == (
                    "__future__"
                ):
                    continue
                bindings.append(
                    (bound, display, (node.lineno, node.col_offset))
                )
    return bindings


def _used_names(tree: ast.Module) -> "Set[str]":
    """Names read anywhere: Load contexts, quoted string annotations,
    and ``__all__`` string entries."""
    used: "Set[str]" = set()
    annotation_texts: "List[str]" = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, ast.Load
        ):
            used.add(node.id)
        if isinstance(node, (ast.AnnAssign, ast.arg)):
            annotation = node.annotation
            if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                annotation_texts.append(annotation.value)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and isinstance(node.returns, ast.Constant):
            if isinstance(node.returns.value, str):
                annotation_texts.append(node.returns.value)
    for entry, _ in _dunder_all_entries(tree):
        used.add(entry)
    for text in annotation_texts:
        try:
            parsed = ast.parse(text, mode="eval")
        except SyntaxError:
            continue
        for sub in ast.walk(parsed):
            if isinstance(sub, ast.Name):
                used.add(sub.id)
    return used


def _toplevel_bindings(tree: ast.Module) -> "Set[str]":
    """Names bound at module top level (defs, classes, assignments,
    imports)."""
    bound: "Set[str]" = set()
    for node in tree.body:
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                bound.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign):
            bound.update(_target_names(node.target))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional bindings (TYPE_CHECKING blocks, fallback
            # imports) count: walk one level of nested bodies.
            for sub in ast.walk(node):
                if isinstance(
                    sub,
                    (
                        ast.FunctionDef,
                        ast.AsyncFunctionDef,
                        ast.ClassDef,
                    ),
                ):
                    bound.add(sub.name)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        bound.update(_target_names(target))
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name)
                elif isinstance(sub, ast.Import):
                    for alias in sub.names:
                        bound.add(
                            alias.asname or alias.name.split(".")[0]
                        )
    return bound


def _target_names(node: ast.expr) -> "Set[str]":
    names: "Set[str]" = set()
    if isinstance(node, ast.Name):
        names.add(node.id)
    elif isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            names.update(_target_names(element))
    return names


def _dunder_all_entries(
    tree: ast.Module,
) -> "List[Tuple[str, Tuple[int, int]]]":
    """String entries of top-level ``__all__`` with their locations."""
    entries: "List[Tuple[str, Tuple[int, int]]]" = []
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(target, ast.Name)
                and target.id == "__all__"
                for target in node.targets
            )
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    entries.append(
                        (
                            element.value,
                            (element.lineno, element.col_offset),
                        )
                    )
    return entries
