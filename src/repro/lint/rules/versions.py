"""The *version-coupling* rule: version constants and reference specs
must stay wired to the code that depends on them.

Two cross-module contracts keep fingerprints honest: every semantic
version constant (``*_CACHE_VERSION``, ``HPC_SIM_VERSION``,
``TRACE_GEN_VERSION``, ...) must actually be read somewhere beyond its
definition — an orphaned constant means a cache key silently stopped
embedding it — and every retained ``*_reference`` scalar specification
must be exercised from ``tests/``, or the bit-identical-to-reference
promise is no longer being checked.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Set, Tuple

from ..engine import LintProject
from ..model import Finding
from .base import Rule

#: Top-level uppercase constants this rule tracks.
VERSION_NAME = re.compile(r"^[A-Z][A-Z0-9_]*_VERSION$")


class VersionCouplingRule(Rule):
    """Flag orphaned version constants and untested reference specs."""

    id = "version-coupling"
    summary = (
        "version constants must be referenced; *_reference functions "
        "must be exercised from tests/"
    )
    explanation = (
        "Semantic version constants (CHAR_CACHE_VERSION, "
        "SHARD_CACHE_VERSION, HPC_SIM_VERSION, TRACE_GEN_VERSION, ...) "
        "exist to invalidate caches when fingerprint-shaping code "
        "changes; a constant nothing reads means some cache key quietly "
        "dropped it.  Likewise every *_reference function is the scalar "
        "ground truth a vectorized engine is tested bit-identical "
        "against — if tests/ stops referencing it, the equivalence "
        "guarantee is gone.  This rule cross-references definitions "
        "against every use in src/repro and tests/."
    )

    def check_project(self, project: LintProject) -> "Iterable[Finding]":
        findings: "List[Finding]" = []
        all_modules = list(project.modules) + list(project.test_modules)
        used_names: "Set[str]" = set()
        for module in all_modules:
            if module.tree is None:
                continue
            used_names.update(_loaded_names(module.tree))
        test_names: "Set[str]" = set()
        for module in project.test_modules:
            if module.tree is None:
                continue
            test_names.update(_loaded_names(module.tree))
            test_names.update(_imported_names(module.tree))
        for module in project.modules:
            if module.tree is None:
                continue
            for name, (line, col) in _version_constants(module.tree):
                if name not in used_names:
                    findings.append(
                        self.finding(
                            module,
                            line,
                            col,
                            f"version constant {name} is never read "
                            "outside its definition; wire it into the "
                            "cache-key builder or delete it",
                        )
                    )
            for name, (line, col) in _reference_functions(module.tree):
                if name not in test_names:
                    findings.append(
                        self.finding(
                            module,
                            line,
                            col,
                            f"reference specification {name}() is not "
                            "referenced from tests/; the bit-identical "
                            "equivalence check is gone",
                        )
                    )
        return findings


def _version_constants(
    tree: ast.Module,
) -> "List[Tuple[str, Tuple[int, int]]]":
    """Top-level ``X_VERSION = <const>`` assignments in a module."""
    found: "List[Tuple[str, Tuple[int, int]]]" = []
    for node in tree.body:
        targets: "List[ast.expr]" = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and VERSION_NAME.match(
                target.id
            ):
                found.append(
                    (target.id, (node.lineno, node.col_offset))
                )
    return found


def _reference_functions(
    tree: ast.Module,
) -> "List[Tuple[str, Tuple[int, int]]]":
    """Top-level ``def *_reference`` definitions in a module."""
    found: "List[Tuple[str, Tuple[int, int]]]" = []
    for node in tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and node.name.endswith("_reference"):
            found.append((node.name, (node.lineno, node.col_offset)))
    return found


def _loaded_names(tree: ast.Module) -> "Set[str]":
    """Every Name/Attribute identifier *read* in the module (loads and
    attribute tails), plus strings listed in ``__all__``."""
    names: "Set[str]" = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, ast.Load
        ):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    for entry in _dunder_all(tree):
        names.add(entry)
    return names


def _imported_names(tree: ast.Module) -> "Set[str]":
    """Names bound by from-imports (``from x import a as b`` -> a)."""
    names: "Set[str]" = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.name)
    return names


def _dunder_all(tree: ast.Module) -> "List[str]":
    """String entries of a top-level ``__all__`` list/tuple."""
    entries: "List[str]" = []
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(target, ast.Name)
                and target.id == "__all__"
                for target in node.targets
            )
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    entries.append(element.value)
    return entries
