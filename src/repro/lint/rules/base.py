"""Rule protocol shared by every ``repro.lint`` check.

A rule is a small object with an ``id``, a one-line ``summary``, a
longer ``explanation`` (shown by ``repro lint --explain RULE``), and two
hooks: :meth:`Rule.check_module` (called once per parsed module) and
:meth:`Rule.check_project` (called once with the whole project, for
cross-module rules such as *version-coupling*).  Either hook may return
no findings; the default implementations return nothing, so concrete
rules override only the hook they need.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Sequence, Tuple

from ..model import ERROR, Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..engine import LintProject, ModuleSource


class Rule:
    """Base class for lint rules.

    Attributes:
        id: stable rule identifier used in findings, suppressions and
            the baseline (e.g. ``determinism``).
        summary: one-line description shown in rule listings.
        explanation: multi-line rationale shown by ``--explain``.
        severity: default severity attached to this rule's findings.
        scopes: path prefixes this rule applies to (empty = whole tree).
    """

    id: str = "rule"
    summary: str = ""
    explanation: str = ""
    severity: str = ERROR
    scopes: "Tuple[str, ...]" = ()

    def applies_to(self, module: "ModuleSource") -> bool:
        """Whether ``module`` falls inside this rule's scope prefixes."""
        if not self.scopes:
            return True
        return any(module.path.startswith(scope) for scope in self.scopes)

    def check_module(
        self, module: "ModuleSource", project: "LintProject"
    ) -> "Iterable[Finding]":
        """Per-module hook; override in rules that scan one file."""
        return ()

    def check_project(self, project: "LintProject") -> "Iterable[Finding]":
        """Whole-project hook; override in cross-module rules."""
        return ()

    def finding(
        self, module: "ModuleSource", line: int, col: int, message: str
    ) -> Finding:
        """Build a finding for this rule at a location in ``module``."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.path,
            line=line,
            col=col,
            message=message,
        )


def iter_scoped_modules(
    project: "LintProject", rule: Rule
) -> "List[ModuleSource]":
    """The parseable modules of ``project`` inside ``rule``'s scope."""
    return [
        module
        for module in project.modules
        if module.tree is not None and rule.applies_to(module)
    ]


def rule_ids(rules: "Sequence[Rule]") -> "List[str]":
    """The ids of ``rules`` in order (for reports and ``--explain``)."""
    return [rule.id for rule in rules]
