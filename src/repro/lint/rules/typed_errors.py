"""The *typed-errors* rule: broad excepts must re-raise or wrap.

The service and persistence layers communicate failure through the
typed ``repro.errors`` family (``ReproError``, ``ServiceError`` and
friends) so callers can map errors to HTTP statuses and retry classes.
A bare/broad ``except`` that swallows the exception without re-raising
or wrapping it into a typed error hides real faults as silent
degradation, so this rule flags exception handlers in
``service``/``perf``/``cli`` whose body neither raises nor constructs
an ``*Error``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..engine import LintProject, ModuleSource, dotted_name
from ..model import Finding
from .base import Rule

#: Exception names considered "broad" when caught.
BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


class TypedErrorsRule(Rule):
    """Flag broad excepts that swallow without raising or wrapping."""

    id = "typed-errors"
    summary = (
        "broad except handlers must re-raise or wrap into repro.errors"
    )
    explanation = (
        "In src/repro/service, src/repro/perf and src/repro/cli.py, a "
        "bare 'except:' or 'except Exception:' handler must either "
        "re-raise (a raise statement anywhere in its body) or convert "
        "the failure into the typed repro.errors family (construct a "
        "name ending in 'Error' or 'Warning').  Handlers that log and "
        "deliberately degrade (e.g. best-effort journal appends) carry "
        "a justified lint-ok suppression instead."
    )
    scopes = (
        "src/repro/service/",
        "src/repro/perf/",
        "src/repro/cli.py",
    )

    def check_module(
        self, module: ModuleSource, project: LintProject
    ) -> "Iterable[Finding]":
        if not self.applies_to(module):
            return ()
        findings: "List[Finding]" = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _handler_raises_or_wraps(node):
                continue
            caught = "bare except" if node.type is None else (
                f"except {ast.unparse(node.type)}"
            )
            findings.append(
                self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"{caught} swallows the failure without re-raising "
                    "or wrapping it into the repro.errors family; "
                    "re-raise, wrap, or justify with lint-ok",
                )
            )
        return findings


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:`` or catching Exception/BaseException."""
    if handler.type is None:
        return True
    candidates: "List[ast.expr]" = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for candidate in candidates:
        name = dotted_name(candidate)
        if name is not None and name.rsplit(".", 1)[-1] in (
            BROAD_EXCEPTIONS
        ):
            return True
    return False


def _handler_raises_or_wraps(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body raises, or constructs/invokes anything
    in the typed error family (a name ending in Error/Warning)."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.rsplit(".", 1)[-1].endswith(
                ("Error", "Warning")
            ):
                return True
    return False
