"""The *determinism* rule: engine code must not read clocks or draw
unseeded randomness.

Every production engine (``mica``, ``synth``, ``uarch``, ``phases``)
promises bit-for-bit reproducible output for a given trace and seed.  A
single ``time.time()`` or unseeded ``np.random`` draw silently breaks
that promise, so this rule bans wall-clock reads and any randomness
that does not flow through the seeded draw protocol in
``repro.synth.rng`` (``stable_seed`` / ``make_rng``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..engine import LintProject, ModuleSource, dotted_name
from ..model import Finding
from .base import Rule

#: Clock reads banned in engine code.
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.clock",
    }
)

#: Method names that read the current date or time off ``datetime``.
DATETIME_NOW_ATTRS = frozenset({"now", "utcnow", "today"})

#: Legacy global-state numpy draw functions (``np.random.<fn>``).
NUMPY_GLOBAL_DRAWS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "geometric",
        "bytes",
    }
)


class DeterminismRule(Rule):
    """Ban clocks and unseeded randomness in engine packages."""

    id = "determinism"
    summary = (
        "engine code must not read clocks or draw unseeded randomness"
    )
    explanation = (
        "Production engines under src/repro/{mica,synth,uarch,phases} "
        "promise bit-for-bit deterministic output for a given trace and "
        "seed.  This rule flags wall-clock reads (time.time, "
        "datetime.now, ...), legacy global-state numpy draws "
        "(np.random.rand, np.random.seed, ...), np.random.default_rng() "
        "called without a seed, and stdlib random.* usage in modules "
        "that import the random module.  All randomness must flow "
        "through repro.synth.rng.make_rng / stable_seed, which derive "
        "streams from explicit seeds."
    )
    scopes = (
        "src/repro/mica/",
        "src/repro/synth/",
        "src/repro/uarch/",
        "src/repro/phases/",
    )

    def check_module(
        self, module: ModuleSource, project: LintProject
    ) -> "Iterable[Finding]":
        if not self.applies_to(module):
            return ()
        findings: "List[Finding]" = []
        imports_random = _imports_stdlib_random(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            findings.extend(
                self._check_call(module, node, name, imports_random)
            )
        return findings

    def _check_call(
        self,
        module: ModuleSource,
        node: ast.Call,
        name: str,
        imports_random: bool,
    ) -> "List[Finding]":
        tail = name.rsplit(".", maxsplit=1)[-1]
        if name in CLOCK_CALLS:
            return [
                self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"clock read {name}() breaks determinism; thread an "
                    "explicit timestamp in from the caller",
                )
            ]
        if tail in DATETIME_NOW_ATTRS and (
            ".datetime." in f".{name}" or ".date." in f".{name}"
        ):
            return [
                self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"wall-clock read {name}() breaks determinism; "
                    "thread an explicit timestamp in from the caller",
                )
            ]
        if name.endswith("np.random.default_rng") or name == (
            "numpy.random.default_rng"
        ):
            if not node.args and not node.keywords:
                return [
                    self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        "np.random.default_rng() without a seed is "
                        "nondeterministic; use repro.synth.rng.make_rng "
                        "or pass an explicit seed",
                    )
                ]
            return []
        if (
            ".random." in f".{name}."
            and tail in NUMPY_GLOBAL_DRAWS
            and name.split(".", maxsplit=1)[0] in {"np", "numpy"}
        ):
            return [
                self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"legacy global-state draw {name}() is banned; use "
                    "repro.synth.rng.make_rng for seeded streams",
                )
            ]
        if imports_random and name.startswith("random."):
            return [
                self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"stdlib {name}() uses hidden global state; use "
                    "repro.synth.rng.make_rng for seeded streams",
                )
            ]
        return []


def _imports_stdlib_random(tree: ast.Module) -> bool:
    """Whether the module imports stdlib ``random`` at the top level."""
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" and alias.asname is None:
                    return True
    return False
