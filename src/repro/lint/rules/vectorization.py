"""The *vectorization* rule: no per-element Python loops over trace
columns in production engine functions.

The reproduction's performance contract (ROADMAP "vectorized engines")
keeps per-instruction Python loops only in two sanctioned places: the
retained ``*_reference`` scalar specifications (the ground truth the
vectorized paths are tested bit-identical against) and the documented
serial pipeline cores in ``repro.uarch``.  Everywhere else, a
``for i in range(len(column))`` loop is a silent O(n)-interpreted
regression waiting to dominate a profile.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..engine import LintProject, ModuleSource, dotted_name
from ..model import Finding
from .base import Rule

#: Column attributes of ``repro.trace.Trace`` — iterating one of these
#: element-by-element is exactly the loop the vectorized engines exist
#: to avoid.
TRACE_COLUMNS = frozenset(
    {
        "pc",
        "opclass",
        "src1",
        "src2",
        "dst",
        "mem_addr",
        "taken",
        "target",
        "load_mask",
        "store_mask",
        "memory_mask",
        "branch_mask",
        "load_addresses",
        "store_addresses",
    }
)

#: Documented serial pipeline cores: per-instruction walks are their
#: specified algorithm (see ROADMAP), not an accident.
SERIAL_CORE_MODULES = frozenset(
    {
        "src/repro/uarch/inorder.py",
        "src/repro/uarch/ooo.py",
        "src/repro/uarch/pipeline_batch.py",
    }
)


class VectorizationRule(Rule):
    """Ban scalar loops over trace columns outside sanctioned specs."""

    id = "vectorization"
    summary = (
        "no per-element loops over trace columns in production engines"
    )
    explanation = (
        "Production engine functions under src/repro/{mica,synth,uarch,"
        "phases} must stay vectorized: this rule flags for-loops over "
        "range(len(...)) and direct (or zip-) iteration over trace "
        "column attributes (trace.pc, trace.mem_addr, ...).  Functions "
        "whose name contains 'reference' are exempt — they are the "
        "retained scalar specifications the vectorized paths are tested "
        "bit-identical against — as are the documented serial pipeline "
        "cores in repro.uarch (inorder, ooo, pipeline_batch)."
    )
    scopes = (
        "src/repro/mica/",
        "src/repro/synth/",
        "src/repro/uarch/",
        "src/repro/phases/",
    )

    def check_module(
        self, module: ModuleSource, project: LintProject
    ) -> "Iterable[Finding]":
        if not self.applies_to(module):
            return ()
        if module.path in SERIAL_CORE_MODULES:
            return ()
        findings: "List[Finding]" = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if any(
                "reference" in name
                for name in module.enclosing_functions(node)
            ):
                continue
            reason = _loop_violation(node.iter)
            if reason:
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        reason
                        + "; vectorize with numpy array operations or "
                        "move the loop into a *_reference specification",
                    )
                )
        return findings


def _loop_violation(iterable: ast.AST) -> "str | None":
    """Why iterating ``iterable`` violates the rule (None when fine)."""
    if isinstance(iterable, ast.Call):
        name = dotted_name(iterable.func)
        if name == "range" and iterable.args:
            inner = iterable.args[0]
            if (
                len(iterable.args) == 1
                and isinstance(inner, ast.Call)
                and dotted_name(inner.func) == "len"
            ):
                return (
                    "per-element loop over range(len(...)) in a "
                    "production engine function"
                )
            return None
        if name == "zip":
            for arg in iterable.args:
                if _is_trace_column(arg):
                    return (
                        "per-element zip over trace column "
                        f"'{arg.attr}' in a production engine function"
                    )
        if name == "enumerate" and iterable.args:
            if _is_trace_column(iterable.args[0]):
                return (
                    "per-element enumerate over trace column "
                    f"'{iterable.args[0].attr}' in a production engine "
                    "function"
                )
        return None
    if _is_trace_column(iterable):
        return (
            f"per-element loop over trace column '{iterable.attr}' in "
            "a production engine function"
        )
    return None


def _is_trace_column(node: ast.AST) -> bool:
    """``<expr>.<column>`` where ``<column>`` is a Trace column name."""
    return isinstance(node, ast.Attribute) and node.attr in TRACE_COLUMNS
