"""The *durability* rule: persistent state flows through the atomic
writer seams, not ad-hoc file writes.

PR 8 made every cache level crash-consistent by funnelling writes
through ``repro.perf.integrity`` (atomic tmp-file + checksum stamp +
rename) and ``repro.perf.journal`` (write-ahead journal).  A direct
``open(..., "w")`` / ``np.savez`` / ``os.rename`` in the persistence
layers bypasses torn-write protection and checksum stamping, so this
rule flags raw write calls in ``perf``/``experiments``/``service``
outside the sanctioned seam modules.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..engine import LintProject, ModuleSource, dotted_name
from ..model import Finding
from .base import Rule

#: The sanctioned seam modules — they *implement* atomic persistence,
#: so raw file primitives are their job.
SEAM_MODULES = frozenset(
    {
        "src/repro/perf/integrity.py",
        "src/repro/perf/journal.py",
        "src/repro/perf/faults.py",
    }
)

#: Dotted call names that move or overwrite files in place.
RAW_MOVE_CALLS = frozenset(
    {
        "os.rename",
        "os.replace",
        "shutil.move",
        "shutil.copyfile",
        "shutil.copy",
        "shutil.copy2",
    }
)

#: numpy persistence entry points that write without integrity stamps.
NUMPY_SAVE_CALLS = frozenset(
    {"np.savez", "np.savez_compressed", "np.save",
     "numpy.savez", "numpy.savez_compressed", "numpy.save"}
)

#: Path methods that write file contents directly.
PATH_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


class DurabilityRule(Rule):
    """Ban raw file writes outside the atomic persistence seams."""

    id = "durability"
    summary = (
        "persistence layers must write through repro.perf.integrity / "
        "repro.perf.journal, not raw file calls"
    )
    explanation = (
        "Cache and journal durability rests on the atomic writer seams "
        "(repro.perf.integrity: tmp-file + checksum stamp + rename; "
        "repro.perf.journal: write-ahead journal).  This rule flags "
        "open() with a write/append mode, np.save/np.savez*, "
        "os.rename/os.replace/shutil.move and Path.write_text/"
        "write_bytes inside src/repro/{perf,experiments,service} — "
        "everywhere except the seam modules themselves (integrity, "
        "journal, faults).  Legitimate non-cache writes (append-only "
        "telemetry, user-requested exports) carry a justified lint-ok "
        "suppression."
    )
    scopes = (
        "src/repro/perf/",
        "src/repro/experiments/",
        "src/repro/service/",
    )

    def check_module(
        self, module: ModuleSource, project: LintProject
    ) -> "Iterable[Finding]":
        if not self.applies_to(module) or module.path in SEAM_MODULES:
            return ()
        findings: "List[Finding]" = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in RAW_MOVE_CALLS:
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"raw {name}() bypasses the atomic writer "
                        "seams; route through repro.perf.integrity",
                    )
                )
            elif name in NUMPY_SAVE_CALLS:
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"{name}() writes without an integrity stamp; "
                        "route through repro.perf.integrity.write_entry",
                    )
                )
            elif name == "open" and _write_mode(node):
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"open(..., {_write_mode(node)!r}) writes "
                        "without torn-write protection; route through "
                        "repro.perf.integrity or justify with lint-ok",
                    )
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in PATH_WRITE_METHODS
            ):
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f".{node.func.attr}() writes without torn-write "
                        "protection; route through repro.perf.integrity "
                        "or justify with lint-ok",
                    )
                )
        return findings


def _write_mode(node: ast.Call) -> "str | None":
    """The constant write/append mode of an ``open`` call, when any."""
    mode: "ast.expr | None" = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if any(flag in mode.value for flag in ("w", "a", "+", "x")):
            return mode.value
    return None
