"""Repo-specific static analysis: mechanical enforcement of the
reproduction's prose invariants.

Nine PRs of engine work rest on contracts that previously existed only
as prose in ROADMAP.md — bit-for-bit determinism, vectorized engines
with retained scalar references, atomic cache durability, lock-guarded
service state, typed errors, and version-stamped cache keys.
``repro.lint`` turns each into a CI-gated check: a stdlib-``ast`` rule
engine (one parse per module), typed :class:`~repro.lint.model.Finding`
dataclasses, inline ``# repro: lint-ok[RULE] reason`` suppressions, and
a committed JSON baseline so the gate fails only on *new* violations
(and on stale baseline entries, so the baseline can only shrink).

Run it as ``repro lint``; exit codes are 0 (clean), 1 (new findings or
stale baseline entries), 2 (usage error).  ``repro lint --explain RULE``
prints a rule's full rationale.
"""

from __future__ import annotations

from .engine import LintProject, ModuleSource, run_lint, run_rules
from .model import (
    Baseline,
    BaselineEntry,
    Finding,
    LintReport,
    LintUsageError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .rules import Rule, default_rules, rule_by_id

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintProject",
    "LintReport",
    "LintUsageError",
    "ModuleSource",
    "Rule",
    "apply_baseline",
    "default_rules",
    "load_baseline",
    "rule_by_id",
    "run_lint",
    "run_rules",
    "write_baseline",
]
