"""The lint engine: one parse per module, suppressions, the runner.

``LintProject`` loads every module under ``src/repro`` (and every test
module under ``tests/``, for cross-tree rules like *version-coupling*)
exactly once — one :func:`ast.parse` per file, shared by every rule.
:func:`run_lint` runs the rule set, drops findings covered by inline
``# repro: lint-ok[RULE] reason`` suppressions, and applies the
committed baseline.

Suppressions are deliberate and visible: the comment must name the rule
it silences, sits on the offending line (or the line directly above),
and should carry a short justification after the bracket — the lint
gate's analogue of a reviewed waiver.  A ``lint-ok`` comment naming a
rule that produced no finding on that line is itself reported (rule id
``unused-suppression``), so waivers cannot outlive the code they
excused.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .model import (
    Baseline,
    Finding,
    LintReport,
    LintUsageError,
    apply_baseline,
)

#: Inline suppression syntax — the comment itself must *start* with the
#: directive, so prose merely mentioning the syntax never suppresses.
SUPPRESSION_PATTERN = re.compile(
    r"^#\s*repro:\s*lint-ok\[([A-Za-z0-9_,\s-]+)\]"
)

#: Rule id of the parse-failure finding (not suppressible).
PARSE_RULE = "parse"

#: Rule id reported for a ``lint-ok`` comment that silenced nothing.
UNUSED_SUPPRESSION_RULE = "unused-suppression"


@dataclass
class ModuleSource:
    """One parsed source file plus its inline suppressions.

    Attributes:
        path: repository-relative posix path (``src/repro/...``).
        text: raw source text.
        tree: the parsed :class:`ast.Module` (None on a syntax error).
        suppressions: line -> set of rule ids suppressed on that line.
        parse_error: the syntax error, when parsing failed.
    """

    path: str
    text: str
    tree: "Optional[ast.Module]" = None
    suppressions: "Dict[int, Set[str]]" = field(default_factory=dict)
    parse_error: "Optional[SyntaxError]" = None

    #: Lines holding only comments/whitespace — a directive on such a
    #: line covers the next code line (through further comment lines).
    comment_only_lines: "Set[int]" = field(default_factory=set)

    # Populated lazily by :meth:`enclosing_functions`.
    _parents: "Optional[Dict[int, ast.AST]]" = None

    @classmethod
    def from_text(cls, path: str, text: str) -> "ModuleSource":
        """Parse one module from source text (never raises)."""
        module = cls(path=path, text=text)
        try:
            module.tree = ast.parse(text)
        except SyntaxError as error:
            module.parse_error = error
        # Only real COMMENT tokens count — a docstring quoting the
        # suppression syntax must never silence anything.
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(text).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError,
                ValueError):
            tokens = []
        code_lines: "Set[int]" = set()
        comment_lines: "Set[int]" = set()
        skip = (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        )
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comment_lines.add(token.start[0])
            elif token.type not in skip:
                for number in range(token.start[0], token.end[0] + 1):
                    code_lines.add(number)
        module.comment_only_lines = comment_lines - code_lines
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_PATTERN.match(token.string)
            if match:
                rules = {
                    rule.strip()
                    for rule in match.group(1).split(",")
                    if rule.strip()
                }
                module.suppressions.setdefault(
                    token.start[0], set()
                ).update(rules)
        return module

    @property
    def name(self) -> str:
        """Dotted module name (``repro.mica.ppm``) when derivable."""
        parts = Path(self.path).with_suffix("").parts
        if "repro" in parts:
            parts = parts[parts.index("repro"):]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is waived on ``line``."""
        return self.suppression_line_for(rule, line) is not None

    def suppression_line_for(
        self, rule: str, line: int
    ) -> "Optional[int]":
        """The directive line waiving ``rule`` on ``line``, when any.

        A trailing comment on the line itself counts, as does a
        directive in the block of full-line comments directly above.
        """
        if rule in self.suppressions.get(line, set()):
            return line
        candidate = line - 1
        while candidate > 0 and candidate in self.comment_only_lines:
            if rule in self.suppressions.get(candidate, set()):
                return candidate
            candidate -= 1
        return None

    def enclosing_functions(self, node: ast.AST) -> "Tuple[str, ...]":
        """Names of the def-statements enclosing ``node``, outermost
        first (empty for module-level code)."""
        self._ensure_parents()
        stack: "List[str]" = []
        current = self._parents.get(id(node)) if self._parents else None
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                stack.append(current.name)
            current = (
                self._parents.get(id(current)) if self._parents else None
            )
        return tuple(reversed(stack))

    def enclosing_class(self, node: ast.AST) -> "Optional[str]":
        """Name of the nearest enclosing class, when there is one."""
        self._ensure_parents()
        current = self._parents.get(id(node)) if self._parents else None
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current.name
            current = (
                self._parents.get(id(current)) if self._parents else None
            )
        return None

    def _ensure_parents(self) -> None:
        if self._parents is not None or self.tree is None:
            return
        parents: "Dict[int, ast.AST]" = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        self._parents = parents


@dataclass
class LintProject:
    """Every parsed module of the repository, loaded once.

    Attributes:
        root: repository root (the directory holding ``src/repro``).
        modules: parsed modules under ``src/repro`` (lint targets).
        test_modules: parsed modules under ``tests/`` (consulted by
            cross-tree rules, never linted themselves).
    """

    root: Path
    modules: "List[ModuleSource]" = field(default_factory=list)
    test_modules: "List[ModuleSource]" = field(default_factory=list)

    @classmethod
    def load(cls, root: "Path | str") -> "LintProject":
        """Load ``src/repro`` (and ``tests/``) under ``root``.

        Raises:
            LintUsageError: ``root`` does not contain ``src/repro``.
        """
        root = Path(root).resolve()
        source_root = root / "src" / "repro"
        if not source_root.is_dir():
            raise LintUsageError(
                f"{root} does not contain src/repro; pass --root or run "
                "from the repository checkout"
            )
        project = cls(root=root)
        for path in sorted(source_root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            project.modules.append(
                ModuleSource.from_text(rel, path.read_text(encoding="utf-8"))
            )
        tests_root = root / "tests"
        if tests_root.is_dir():
            for path in sorted(tests_root.rglob("*.py")):
                rel = path.relative_to(root).as_posix()
                project.test_modules.append(
                    ModuleSource.from_text(
                        rel, path.read_text(encoding="utf-8")
                    )
                )
        return project

    @classmethod
    def from_sources(
        cls,
        sources: "Mapping[str, str]",
        root: "Path | str" = ".",
    ) -> "LintProject":
        """Build an in-memory project from {relative path: source text}.

        Paths starting with ``tests/`` become test modules; everything
        else is a lint target.  Used by the fixture tests and by the
        revert-detection check.
        """
        project = cls(root=Path(root))
        for rel in sorted(sources):
            module = ModuleSource.from_text(rel, sources[rel])
            if rel.startswith("tests/"):
                project.test_modules.append(module)
            else:
                project.modules.append(module)
        return project


def dotted_name(node: ast.AST) -> "Optional[str]":
    """The dotted source form of a Name/Attribute chain.

    ``np.random.default_rng`` -> ``"np.random.default_rng"``; anything
    rooted in a call or subscript (``foo().bar``) returns None.
    """
    parts: "List[str]" = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def run_rules(
    project: LintProject, rules: "Sequence[object]"
) -> "List[Finding]":
    """Run every rule over the project; returns unsuppressed findings
    (sorted by location) plus parse-error and unused-suppression
    findings."""
    findings: "List[Finding]" = []
    suppressed_hits: "Dict[Tuple[str, int, str], bool]" = {}
    for module in project.modules:
        if module.parse_error is not None:
            findings.append(
                Finding(
                    rule=PARSE_RULE,
                    severity="error",
                    path=module.path,
                    line=module.parse_error.lineno or 1,
                    col=0,
                    message=(
                        f"file does not parse: {module.parse_error.msg}"
                    ),
                )
            )
    for rule in rules:
        produced: "List[Finding]" = []
        produced.extend(rule.check_project(project))
        for module in project.modules:
            if module.tree is None:
                continue
            produced.extend(rule.check_module(module, project))
        for finding in produced:
            module = _module_for(project, finding.path)
            directive = (
                module.suppression_line_for(finding.rule, finding.line)
                if module is not None
                else None
            )
            if module is not None and directive is not None:
                suppressed_hits[
                    (module.path, directive, finding.rule)
                ] = True
                continue
            findings.append(finding)
    # Every lint-ok comment must have silenced at least one finding.
    for module in project.modules:
        for line, rules_on_line in sorted(module.suppressions.items()):
            for rule_id in sorted(rules_on_line):
                if not suppressed_hits.get(
                    (module.path, line, rule_id)
                ):
                    findings.append(
                        Finding(
                            rule=UNUSED_SUPPRESSION_RULE,
                            severity="warning",
                            path=module.path,
                            line=line,
                            col=0,
                            message=(
                                f"lint-ok[{rule_id}] suppresses "
                                "nothing on this line; remove it"
                            ),
                        )
                    )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _module_for(
    project: LintProject, path: str
) -> "Optional[ModuleSource]":
    for module in project.modules:
        if module.path == path:
            return module
    return None


def run_lint(
    root: "Path | str | None" = None,
    rules: "Sequence[object] | None" = None,
    baseline: "Baseline | None" = None,
    project: "LintProject | None" = None,
) -> LintReport:
    """Lint the repository (or a prebuilt project) and apply a baseline.

    Args:
        root: repository root; required unless ``project`` is given.
        rules: rule instances to run (default: every registered rule).
        baseline: grandfathered findings; None means everything gates.
        project: a prebuilt :class:`LintProject` (tests use
            :meth:`LintProject.from_sources`).

    Returns:
        The :class:`~repro.lint.model.LintReport`; ``report.exit_code``
        is the gate outcome.
    """
    if rules is None:
        from .rules import default_rules

        rules = default_rules()
    if project is None:
        if root is None:
            raise LintUsageError("run_lint needs a root or a project")
        project = LintProject.load(root)
    findings = run_rules(project, rules)
    new, matched, stale = apply_baseline(findings, baseline)
    return LintReport(
        findings=findings,
        new=new,
        baselined=matched,
        stale=stale,
        modules=len(project.modules),
        rules=tuple(getattr(rule, "id", type(rule).__name__)
                    for rule in rules),
    )


def iter_suppression_lines(module: ModuleSource) -> "Iterable[int]":
    """Line numbers carrying at least one ``lint-ok`` comment."""
    return sorted(module.suppressions)
