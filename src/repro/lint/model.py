"""Typed findings, the committed baseline, and the lint report.

A :class:`Finding` is one rule violation at one source location.  The
*baseline* (``lint-baseline.json`` at the repository root) holds
grandfathered findings: the gate only fails on findings **not** in the
baseline (*new*), and on baseline entries that no longer match any
current finding (*stale*) — so the baseline can only shrink, never rot.

Baseline entries match findings on ``(rule, path, message)`` with
multiset semantics; line numbers are recorded for humans but ignored
for matching, so unrelated edits that shift a grandfathered finding do
not break the gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError

#: Schema tag of the committed baseline file.
BASELINE_SCHEMA = "repro-lint-baseline/1"

#: Schema tag of ``repro lint --format json`` output.
REPORT_SCHEMA = "repro-lint/1"

#: Finding severities (informational only; every new finding gates).
ERROR = "error"
WARNING = "warning"


class LintUsageError(ReproError):
    """The lint invocation itself is wrong (unknown rule, bad baseline).

    ``repro lint`` maps this to exit code 2, distinguishing a misused
    gate from a failing one (exit 1).
    """


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: rule id (e.g. ``determinism``).
        severity: :data:`ERROR` or :data:`WARNING`.
        path: repository-relative posix path of the offending file.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        message: human-readable description of the violation.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def key(self) -> "Tuple[str, str, str]":
        """The baseline-matching key: ``(rule, path, message)``."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        """One ``path:line:col: [rule] message`` line."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"[{self.rule}] {self.message}"
        )

    def to_json(self) -> dict:
        """JSON-ready dict (``--format json`` and baseline entries)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding in the committed baseline.

    Attributes:
        rule / path / message: the matching key.
        line: where the finding sat when baselined (informational).
        justification: why it was grandfathered instead of fixed.
    """

    rule: str
    path: str
    message: str
    line: int = 0
    justification: str = ""

    def key(self) -> "Tuple[str, str, str]":
        """The baseline-matching key: ``(rule, path, message)``."""
        return (self.rule, self.path, self.message)

    def to_json(self) -> dict:
        """JSON-ready dict for the baseline file."""
        payload = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.justification:
            payload["justification"] = self.justification
        return payload


@dataclass(frozen=True)
class Baseline:
    """The committed set of grandfathered findings."""

    entries: "Tuple[BaselineEntry, ...]" = ()

    def to_json(self) -> dict:
        """The baseline-file document."""
        return {
            "schema": BASELINE_SCHEMA,
            "entries": [entry.to_json() for entry in self.entries],
        }


def load_baseline(path: "Path | str") -> Baseline:
    """Parse a baseline file.

    Raises:
        LintUsageError: missing file, unparsable JSON, wrong schema or
            malformed entries — a broken baseline must fail loudly
            (exit 2), never silently admit new findings.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as error:
        raise LintUsageError(f"cannot read baseline {path}: {error}")
    try:
        document = json.loads(raw)
    except json.JSONDecodeError as error:
        raise LintUsageError(f"baseline {path} is not valid JSON: {error}")
    if not isinstance(document, dict) or document.get(
        "schema"
    ) != BASELINE_SCHEMA:
        raise LintUsageError(
            f"baseline {path} does not carry schema "
            f"{BASELINE_SCHEMA!r}"
        )
    entries = document.get("entries")
    if not isinstance(entries, list):
        raise LintUsageError(f"baseline {path}: 'entries' must be a list")
    parsed: "List[BaselineEntry]" = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict) or not all(
            isinstance(entry.get(field_name), str)
            for field_name in ("rule", "path", "message")
        ):
            raise LintUsageError(
                f"baseline {path}: entry {index} must be an object "
                "with string 'rule', 'path' and 'message'"
            )
        parsed.append(
            BaselineEntry(
                rule=entry["rule"],
                path=entry["path"],
                message=entry["message"],
                line=int(entry.get("line", 0)),
                justification=str(entry.get("justification", "")),
            )
        )
    return Baseline(entries=tuple(parsed))


def write_baseline(
    path: "Path | str", findings: "Sequence[Finding]",
    justification: str = "grandfathered by --update-baseline",
) -> Path:
    """Write every current finding as a baseline entry.

    Used by ``repro lint --update-baseline``; the resulting file makes
    the current state the gate's zero point.
    """
    baseline = Baseline(
        entries=tuple(
            BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                message=finding.message,
                line=finding.line,
                justification=justification,
            )
            for finding in findings
        )
    )
    target = Path(path)
    target.write_text(
        json.dumps(baseline.to_json(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


@dataclass
class LintReport:
    """The outcome of one lint run against an optional baseline.

    Attributes:
        findings: every unsuppressed finding, sorted by location.
        new: findings not covered by the baseline (these gate).
        baselined: findings matched (consumed) by baseline entries.
        stale: baseline entries matching no current finding (these
            gate too — the baseline must round-trip).
        modules: number of modules analyzed.
        rules: ids of the rules that ran.
    """

    findings: "List[Finding]" = field(default_factory=list)
    new: "List[Finding]" = field(default_factory=list)
    baselined: "List[Finding]" = field(default_factory=list)
    stale: "List[BaselineEntry]" = field(default_factory=list)
    modules: int = 0
    rules: "Tuple[str, ...]" = ()

    @property
    def clean(self) -> bool:
        """True when nothing gates: no new findings, no stale entries."""
        return not self.new and not self.stale

    @property
    def exit_code(self) -> int:
        """0 clean, 1 when new findings or stale baseline entries."""
        return 0 if self.clean else 1

    def format(self) -> str:
        """Human-readable report (the ``--format text`` output)."""
        lines: "List[str]" = []
        for finding in self.new:
            lines.append(finding.format())
        for entry in self.stale:
            lines.append(
                f"{entry.path}: [baseline] stale entry for rule "
                f"{entry.rule!r}: {entry.message!r} no longer matches "
                "any finding — remove it from the baseline"
            )
        counts: "Dict[str, int]" = {}
        for finding in self.new:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        summary = (
            f"repro lint: {self.modules} modules, "
            f"{len(self.rules)} rules: "
        )
        if self.clean:
            detail = "clean"
            if self.baselined:
                detail += f" ({len(self.baselined)} baselined)"
            lines.append(summary + detail)
        else:
            parts = []
            if self.new:
                by_rule = ", ".join(
                    f"{rule} x{count}"
                    for rule, count in sorted(counts.items())
                )
                parts.append(
                    f"{len(self.new)} new finding(s) [{by_rule}]"
                )
            if self.stale:
                parts.append(
                    f"{len(self.stale)} stale baseline entr"
                    f"{'y' if len(self.stale) == 1 else 'ies'}"
                )
            lines.append(summary + ", ".join(parts))
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable report (the ``--format json`` output)."""
        return {
            "schema": REPORT_SCHEMA,
            "clean": self.clean,
            "modules": self.modules,
            "rules": list(self.rules),
            "findings": [finding.to_json() for finding in self.findings],
            "new": [finding.to_json() for finding in self.new],
            "baselined": len(self.baselined),
            "stale": [entry.to_json() for entry in self.stale],
        }


def apply_baseline(
    findings: "Sequence[Finding]", baseline: "Optional[Baseline]"
) -> "Tuple[List[Finding], List[Finding], List[BaselineEntry]]":
    """Split findings into (new, baselined) and find stale entries.

    Matching is a multiset on ``(rule, path, message)``: two identical
    findings need two baseline entries, so the baseline cannot hide a
    *second* occurrence of a grandfathered violation.
    """
    if baseline is None:
        return list(findings), [], []
    budget: "Dict[Tuple[str, str, str], int]" = {}
    for entry in baseline.entries:
        budget[entry.key()] = budget.get(entry.key(), 0) + 1
    new: "List[Finding]" = []
    matched: "List[Finding]" = []
    for finding in findings:
        remaining = budget.get(finding.key(), 0)
        if remaining > 0:
            budget[finding.key()] = remaining - 1
            matched.append(finding)
        else:
            new.append(finding)
    # For each key, the last `budget[key]` entries with that key were
    # never consumed by a finding — those are stale.
    stale: "List[BaselineEntry]" = []
    leftover = dict(budget)
    for entry in reversed(baseline.entries):
        key = entry.key()
        if leftover.get(key, 0) > 0:
            leftover[key] -= 1
            stale.append(entry)
    stale.reverse()
    return new, matched, stale
