"""Liveness and readiness bodies for the characterization service.

``/healthz`` answers 200 for as long as the process can serve HTTP at
all — it reflects *liveness*, so an orchestrator never kills a service
that is merely overloaded, draining or running with an open breaker.

``/readyz`` reflects *readiness to accept cold work*: it goes 503 when
the breaker is open, when the admission queue is saturated past the
high-water fraction, or when the service is draining — exactly the
conditions under which a new cold submission would be refused — while
still reporting the full state in its body (including the degraded
cache flag, which by itself does not unready the service: degraded mode
keeps serving by computing without the cache).
"""

from __future__ import annotations

import time


def liveness_body(started_at: float) -> dict:
    """The ``/healthz`` payload (always served with 200)."""
    return {
        "status": "ok",
        "uptime": round(time.monotonic() - started_at, 3),
    }


def readiness(
    breaker_snapshot: dict,
    queue_depth: int,
    queue_capacity: int,
    draining: bool,
    degraded: bool,
    high_water_fraction: float = 0.8,
    job_counts: "dict | None" = None,
    recovery: "dict | None" = None,
) -> "tuple[int, dict]":
    """The ``/readyz`` (status, payload) pair.

    Ready means a cold submission posted right now would be admitted:
    breaker not open, queue below the high-water mark, not draining.
    ``recovery`` (journal-recovery counters of a restarted service) is
    reported verbatim when the service runs with a state directory; it
    never affects readiness — recovered work goes through the normal
    queue.
    """
    saturated = queue_depth >= max(
        1, int(queue_capacity * high_water_fraction)
    )
    breaker_open = breaker_snapshot.get("state") == "open"
    ready = not (breaker_open or saturated or draining)
    body = {
        "ready": ready,
        "breaker": breaker_snapshot,
        "queue": {
            "depth": queue_depth,
            "capacity": queue_capacity,
            "saturated": saturated,
        },
        "draining": draining,
        "cache_degraded": degraded,
    }
    if job_counts is not None:
        body["jobs"] = job_counts
    if recovery is not None:
        body["recovery"] = recovery
    return (200 if ready else 503), body
