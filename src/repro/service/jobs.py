"""Job lifecycle and registry for the characterization service.

A *job* is one admitted cold request (warm content-hash hits never
become jobs — they answer 200 inline).  Jobs move through a fixed state
machine::

    queued -> running -> done | failed
         \\-> expired (deadline passed while queued or running)
         \\-> cancelled (drain timeout)

Transitions into a terminal state are first-writer-wins under the job's
lock: a watchdog that expires an overdue job wins against the worker
thread that later finishes the abandoned computation, so a client can
never observe a result after being told 504.  The registry keeps a
bounded history of terminal jobs (oldest evicted first), so a service
under sustained traffic holds O(capacity + history) job records, never
unbounded memory.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import JobNotFoundError, ServiceError

#: Job states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
EXPIRED = "expired"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, EXPIRED, CANCELLED})


class Job:
    """One admitted cold request.

    Attributes:
        id: opaque job id (path segment of the poll URL).
        kind: request kind (``characterize``/``hpc``/``phases``/
            ``dataset``).
        params: validated request parameters.
        deadline: absolute ``time.monotonic()`` instant the request
            must finish by.
        state: current lifecycle state.
        result: response payload dict (set once, on ``done``).
        error: the :class:`~repro.errors.ServiceError` explaining a
            ``failed``/``expired``/``cancelled`` outcome.
        attempts: compute attempts started so far.
        probe: whether this job consumed the circuit breaker's
            half-open probe slot at admission (it then owes the
            breaker exactly one outcome; see :meth:`claim_probe`).
    """

    def __init__(
        self,
        job_id: str,
        kind: str,
        params: dict,
        deadline: float,
        probe: bool = False,
        on_terminal: "Optional[Callable[[Job], None]]" = None,
    ):
        self.id = job_id
        self.kind = kind
        self.params = params
        self.deadline = deadline
        self.created_at = time.monotonic()
        self.state = QUEUED
        self.result: Optional[dict] = None
        self.error: Optional[ServiceError] = None
        self.attempts = 0
        self.probe = probe
        self.cancel_requested = threading.Event()
        self._terminal = threading.Event()
        self._lock = threading.Lock()
        self._probe_claimed = False
        self._on_terminal = on_terminal

    # -- time ----------------------------------------------------------

    def remaining(self) -> float:
        """Seconds until the deadline (negative once overdue)."""
        return self.deadline - time.monotonic()

    def overdue(self) -> bool:
        return self.remaining() <= 0.0

    # -- transitions (first terminal writer wins) ----------------------

    def start_running(self) -> bool:
        """Move queued -> running; False when already terminal."""
        with self._lock:
            if self.state != QUEUED:
                return False
            self.state = RUNNING
            return True

    def finish_ok(self, result: dict) -> bool:
        """Record a successful result; False when the job already
        reached a terminal state (e.g. expired by the watchdog — the
        late result is abandoned, never served)."""
        with self._lock:
            if self.state in TERMINAL_STATES:
                return False
            self.state = DONE
            self.result = result
        self._terminal.set()
        self._fire_on_terminal()
        return True

    def finish_error(
        self, error: ServiceError, state: str = FAILED
    ) -> bool:
        """Record a failure/expiry/cancellation; first writer wins."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"not a terminal state: {state!r}")
        with self._lock:
            if self.state in TERMINAL_STATES:
                return False
            self.state = state
            self.error = error
        self.cancel_requested.set()
        self._terminal.set()
        self._fire_on_terminal()
        return True

    def _fire_on_terminal(self) -> None:
        # Only the thread that won the terminal transition reaches
        # here, so the callback fires exactly once per job — every
        # terminal path (worker outcome, watchdog expiry, drain
        # cancellation, admission refusal) goes through it.
        callback, self._on_terminal = self._on_terminal, None
        if callback is not None:
            callback(self)

    def claim_probe(self) -> bool:
        """Claim the right to report this job's probe outcome.

        The first claimant (a worker about to call the breaker's
        ``record_success``/``record_failure``, or the terminal
        callback about to ``release_probe``) wins; everyone else gets
        False, so a probe slot is settled exactly once and a late
        release can never clear a *different* submission's probe.
        Always False for jobs that never owned the probe slot.
        """
        with self._lock:
            if not self.probe or self._probe_claimed:
                return False
            self._probe_claimed = True
            return True

    # -- observation ---------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait(self, timeout: "float | None" = None) -> bool:
        """Block until the job is terminal; True when it finished."""
        return self._terminal.wait(timeout)

    def status_body(self) -> dict:
        """The 202 poll body for a not-yet-finished job."""
        return {
            "job": self.id,
            "kind": self.kind,
            "state": self.state,
            "attempts": self.attempts,
            "deadline_in": round(max(0.0, self.remaining()), 3),
            "poll": f"/v1/jobs/{self.id}",
        }


class JobRegistry:
    """Thread-safe id -> :class:`Job` map with bounded terminal history.

    Args:
        max_finished: terminal jobs retained for polling before the
            oldest are evicted (keeps the registry's memory bounded
            under sustained traffic).
    """

    def __init__(self, max_finished: int = 256):
        self.max_finished = max_finished
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    def create(
        self,
        kind: str,
        params: dict,
        deadline: float,
        probe: bool = False,
        on_terminal: "Optional[Callable[[Job], None]]" = None,
    ) -> Job:
        """Register a new queued job.

        ``probe``/``on_terminal`` are set at construction — before the
        job is visible to the watchdog — so even a job that expires
        instantly still fires its terminal callback.
        """
        with self._lock:
            job_id = f"{kind}-{next(self._ids):08x}"
            job = Job(
                job_id, kind, params, deadline,
                probe=probe, on_terminal=on_terminal,
            )
            self._jobs[job_id] = job
            self._evict_locked()
            return job

    def get(self, job_id: str) -> Job:
        """Look a job up.

        Raises:
            JobNotFoundError: unknown (or already-evicted) id.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"unknown job id: {job_id!r}")
        return job

    def active(self) -> "List[Job]":
        """Jobs not yet terminal (the watchdog's scan set)."""
        with self._lock:
            return [
                job for job in self._jobs.values() if not job.terminal
            ]

    def counts(self) -> "Dict[str, int]":
        """State -> job count (for health/stats bodies)."""
        with self._lock:
            counts: "Dict[str, int]" = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    def _evict_locked(self) -> None:
        terminal = [
            job_id for job_id, job in self._jobs.items() if job.terminal
        ]
        excess = len(terminal) - self.max_finished
        for job_id in terminal[:max(0, excess)]:
            del self._jobs[job_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
