"""Job lifecycle and registry for the characterization service.

A *job* is one admitted cold request (warm content-hash hits never
become jobs — they answer 200 inline).  Jobs move through a fixed state
machine::

    queued -> running -> done | failed
         \\-> expired (deadline passed while queued or running)
         \\-> cancelled (drain timeout)

Transitions into a terminal state are first-writer-wins under the job's
lock: a watchdog that expires an overdue job wins against the worker
thread that later finishes the abandoned computation, so a client can
never observe a result after being told 504.  The registry keeps a
bounded history of terminal jobs (oldest evicted first), so a service
under sustained traffic holds O(capacity + history) job records, never
unbounded memory.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from ..errors import JobNotFoundError, ServiceError

logger = logging.getLogger("repro.service")

#: Job states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
EXPIRED = "expired"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, EXPIRED, CANCELLED})


class Job:
    """One admitted cold request.

    Attributes:
        id: opaque job id (path segment of the poll URL).
        kind: request kind (``characterize``/``hpc``/``phases``/
            ``dataset``).
        params: validated request parameters.
        deadline: absolute ``time.monotonic()`` instant the request
            must finish by.
        state: current lifecycle state.
        result: response payload dict (set once, on ``done``).
        error: the :class:`~repro.errors.ServiceError` explaining a
            ``failed``/``expired``/``cancelled`` outcome.
        attempts: compute attempts started so far.
        probe: whether this job consumed the circuit breaker's
            half-open probe slot at admission (it then owes the
            breaker exactly one outcome; see :meth:`claim_probe`).
    """

    def __init__(
        self,
        job_id: str,
        kind: str,
        params: dict,
        deadline: float,
        probe: bool = False,
        on_terminal: "Optional[Callable[[Job], None]]" = None,
    ):
        self.id = job_id
        self.kind = kind
        self.params = params
        self.deadline = deadline
        self.created_at = time.monotonic()
        self.state = QUEUED
        self.result: Optional[dict] = None
        self.error: Optional[ServiceError] = None
        self.attempts = 0
        self.probe = probe
        self.cancel_requested = threading.Event()
        self._terminal = threading.Event()
        self._lock = threading.Lock()
        self._probe_claimed = False
        self._on_terminal = on_terminal

    # -- time ----------------------------------------------------------

    def remaining(self) -> float:
        """Seconds until the deadline (negative once overdue)."""
        return self.deadline - time.monotonic()

    def overdue(self) -> bool:
        return self.remaining() <= 0.0

    # -- transitions (first terminal writer wins) ----------------------

    def start_running(self) -> bool:
        """Move queued -> running; False when already terminal."""
        with self._lock:
            if self.state != QUEUED:
                return False
            self.state = RUNNING
            return True

    def finish_ok(self, result: dict) -> bool:
        """Record a successful result; False when the job already
        reached a terminal state (e.g. expired by the watchdog — the
        late result is abandoned, never served)."""
        with self._lock:
            if self.state in TERMINAL_STATES:
                return False
            self.state = DONE
            self.result = result
        self._terminal.set()
        self._fire_on_terminal()
        return True

    def finish_error(
        self, error: ServiceError, state: str = FAILED
    ) -> bool:
        """Record a failure/expiry/cancellation; first writer wins."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"not a terminal state: {state!r}")
        with self._lock:
            if self.state in TERMINAL_STATES:
                return False
            self.state = state
            self.error = error
        self.cancel_requested.set()
        self._terminal.set()
        self._fire_on_terminal()
        return True

    def _fire_on_terminal(self) -> None:
        # Only the thread that won the terminal transition reaches
        # here, so the callback fires exactly once per job — every
        # terminal path (worker outcome, watchdog expiry, drain
        # cancellation, admission refusal) goes through it.
        callback, self._on_terminal = self._on_terminal, None
        if callback is not None:
            callback(self)

    def claim_probe(self) -> bool:
        """Claim the right to report this job's probe outcome.

        The first claimant (a worker about to call the breaker's
        ``record_success``/``record_failure``, or the terminal
        callback about to ``release_probe``) wins; everyone else gets
        False, so a probe slot is settled exactly once and a late
        release can never clear a *different* submission's probe.
        Always False for jobs that never owned the probe slot.
        """
        with self._lock:
            if not self.probe or self._probe_claimed:
                return False
            self._probe_claimed = True
            return True

    # -- observation ---------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait(self, timeout: "float | None" = None) -> bool:
        """Block until the job is terminal; True when it finished."""
        return self._terminal.wait(timeout)

    def status_body(self) -> dict:
        """The 202 poll body for a not-yet-finished job."""
        return {
            "job": self.id,
            "kind": self.kind,
            "state": self.state,
            "attempts": self.attempts,
            "deadline_in": round(max(0.0, self.remaining()), 3),
            "poll": f"/v1/jobs/{self.id}",
        }


class JobRegistry:
    """Thread-safe id -> :class:`Job` map with bounded terminal history.

    Args:
        max_finished: terminal jobs retained for polling before the
            oldest are evicted (keeps the registry's memory bounded
            under sustained traffic).
        journal: optional opened
            :class:`~repro.perf.journal.WriteAheadJournal`.  When set,
            every admission and every terminal transition is appended
            (write-ahead, fsync'd) before the rest of the service
            relies on it, so a SIGKILLed service can be restarted with
            its terminal jobs intact and its interrupted jobs known.
            Journal IO failures are logged and swallowed — durability
            degrades, serving never stops.
    """

    def __init__(self, max_finished: int = 256, journal=None):
        self.max_finished = max_finished
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._journal = journal

    # -- journal plumbing ----------------------------------------------

    def _journal_append(self, record: dict) -> None:
        if self._journal is None:
            return
        try:
            self._journal.append(record)
        # repro: lint-ok[typed-errors] journal IO failure degrades
        # durability, never serving: log and continue by design
        except Exception:
            logger.warning(
                "job journal append failed; continuing without "
                "durability for this event", exc_info=True,
            )

    def _journal_terminal(self, job: Job) -> None:
        record = {
            "event": "job-terminal",
            "job": job.id,
            "kind": job.kind,
            "state": job.state,
        }
        if job.state == DONE:
            record["result"] = job.result
        elif job.error is not None:
            record["error"] = {
                "code": job.error.code,
                "message": str(job.error),
                "retry_after": job.error.retry_after,
            }
        self._journal_append(record)

    def _terminal_hook(
        self, inner: "Optional[Callable[[Job], None]]"
    ) -> "Callable[[Job], None]":
        def hook(job: Job) -> None:
            self._journal_terminal(job)
            if inner is not None:
                inner(job)

        return hook

    def resume_ids_above(self, floor: int) -> None:
        """Never re-issue ids up to ``floor`` (journal recovery)."""
        with self._lock:
            self._ids = itertools.count(max(next(self._ids), floor + 1))

    def create(
        self,
        kind: str,
        params: dict,
        deadline: float,
        probe: bool = False,
        on_terminal: "Optional[Callable[[Job], None]]" = None,
    ) -> Job:
        """Register a new queued job.

        ``probe``/``on_terminal`` are set at construction — before the
        job is visible to the watchdog — so even a job that expires
        instantly still fires its terminal callback.  With a journal
        attached, the admission is durable before the job exists and
        the terminal transition is journaled from the job's terminal
        callback (chained in front of ``on_terminal``).
        """
        with self._lock:
            job_id = f"{kind}-{next(self._ids):08x}"
            callback = (
                self._terminal_hook(on_terminal)
                if self._journal is not None else on_terminal
            )
            self._journal_append({
                "event": "job-admitted",
                "job": job_id,
                "kind": kind,
                "params": params,
            })
            job = Job(
                job_id, kind, params, deadline,
                probe=probe, on_terminal=callback,
            )
            self._jobs[job_id] = job
            self._evict_locked()
            return job

    def restore_terminal(
        self,
        job_id: str,
        kind: str,
        params: dict,
        state: str,
        result: "Optional[dict]" = None,
        error: "Optional[ServiceError]" = None,
    ) -> Job:
        """Re-register a journaled terminal job after a restart.

        The job answers polls exactly as before the crash (the journal
        holds the full result payload / typed error); no callbacks
        fire and nothing is re-journaled.
        """
        if state not in TERMINAL_STATES:
            raise ValueError(f"not a terminal state: {state!r}")
        job = Job(job_id, kind, params, deadline=time.monotonic())
        job.state = state
        job.result = result
        job.error = error
        job._terminal.set()
        with self._lock:
            self._jobs[job_id] = job
            self._evict_locked()
        return job

    def restore_queued(
        self, job_id: str, kind: str, params: dict, deadline: float
    ) -> Job:
        """Re-register an interrupted job for re-execution.

        The job keeps its pre-crash id (poll URLs stay valid), gets a
        fresh deadline, and carries the journal terminal hook so its
        eventual outcome is recorded like any other job's.  Its
        admission is not re-appended here — recovery compacts the
        journal and the compacted image already carries it.
        """
        job = Job(
            job_id, kind, params, deadline,
            on_terminal=(
                self._terminal_hook(None)
                if self._journal is not None else None
            ),
        )
        with self._lock:
            self._jobs[job_id] = job
            self._evict_locked()
        return job

    def get(self, job_id: str) -> Job:
        """Look a job up.

        Raises:
            JobNotFoundError: unknown (or already-evicted) id.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"unknown job id: {job_id!r}")
        return job

    def active(self) -> "List[Job]":
        """Jobs not yet terminal (the watchdog's scan set)."""
        with self._lock:
            return [
                job for job in self._jobs.values() if not job.terminal
            ]

    def counts(self) -> "Dict[str, int]":
        """State -> job count (for health/stats bodies)."""
        with self._lock:
            counts: "Dict[str, int]" = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    def _evict_locked(self) -> None:
        terminal = [
            job_id for job_id, job in self._jobs.items() if job.terminal
        ]
        excess = len(terminal) - self.max_finished
        for job_id in terminal[:max(0, excess)]:
            del self._jobs[job_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
