"""Circuit breaker guarding the service's cold-compute path.

The breaker watches *infrastructure* failures — worker crashes
(``BrokenProcessPool``), pool rebuilds reported by
:func:`~repro.experiments.build_dataset`, injected worker faults — and
never user errors (an unknown benchmark cannot trip it).  Classic three
states:

* **closed** — normal operation; ``failure_threshold`` consecutive
  failures open it.
* **open** — cold submissions are refused (503 +
  ``Retry-After``) until ``recovery_seconds`` elapse.
* **half-open** — one probe submission is admitted; its success closes
  the breaker, its failure re-opens it (and restarts the recovery
  clock).

All transitions happen under one lock, so concurrent handler threads
observe a consistent state, and exactly one of them wins the half-open
probe slot.
"""

from __future__ import annotations

import threading
import time

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    Args:
        failure_threshold: consecutive failures that open the breaker.
        recovery_seconds: time the breaker stays open before admitting
            a half-open probe.
        clock: monotonic time source (overridable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_seconds: float = 5.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._trip_count = 0

    # -- queries -------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def allow(self) -> bool:
        """Whether a cold submission may proceed right now.

        In the half-open state at most one caller is granted the probe
        slot; everyone else keeps getting False until the probe's
        outcome is recorded.
        """
        return self.acquire()[0]

    def acquire(self) -> "tuple[bool, bool]":
        """Admission decision as ``(allowed, probe_taken)``.

        ``probe_taken`` is True only for the one caller granted the
        half-open probe slot — that caller (and nobody else) owes the
        breaker an outcome: ``record_success``/``record_failure`` once
        work ran, or ``release_probe`` when the probe never produced
        evidence (refused downstream, expired, cancelled).
        """
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == CLOSED:
                return True, False
            if self._state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True, True
            return False, False

    def retry_after(self) -> float:
        """Seconds until a half-open probe will be admitted."""
        with self._lock:
            if self._state == CLOSED:
                return 0.0
            elapsed = self._clock() - self._opened_at
            return max(0.0, self.recovery_seconds - elapsed)

    def snapshot(self) -> dict:
        """State summary for health/stats bodies."""
        with self._lock:
            self._maybe_half_open_locked()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "trips": self._trip_count,
                "retry_after": round(max(
                    0.0,
                    self.recovery_seconds - (
                        self._clock() - self._opened_at
                    ),
                ), 3) if self._state != CLOSED else 0.0,
            }

    def release_probe(self) -> None:
        """Return an unused half-open probe slot.

        Called when a submission that won the probe slot terminated
        without reporting an outcome — refused downstream (queue full,
        draining), expired by the watchdog, cancelled by a drain, or
        failed with a typed non-infrastructure error — so the probe
        produced no evidence either way and the slot must come back.
        """
        with self._lock:
            self._probe_in_flight = False

    # -- outcome recording ---------------------------------------------

    def record_success(self) -> None:
        """A guarded operation finished cleanly: close the breaker."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            self._state = CLOSED

    def record_failure(self) -> None:
        """A guarded operation hit an infrastructure failure."""
        with self._lock:
            self._maybe_half_open_locked()
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                # The probe failed: re-open and restart the clock.
                self._trip_locked()
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip_locked()

    # -- internals -----------------------------------------------------

    def _trip_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probe_in_flight = False
        self._trip_count += 1

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_seconds
        ):
            self._state = HALF_OPEN
            self._probe_in_flight = False
