"""HTTP transport for the characterization service (stdlib only).

A thin, dependency-free layer over
:class:`~repro.service.app.CharacterizationService`: a
``ThreadingHTTPServer`` whose handler parses the path/query/JSON body,
delegates to ``service.handle`` and writes the (status, JSON body,
headers) triple back.  All policy — admission, deadlines, breaker,
degradation — lives in the service core; the transport only translates
bytes.

``serve`` is the long-running entry point behind ``repro serve``: it
installs SIGTERM/SIGINT handlers that perform the graceful drain (stop
admitting, let in-flight jobs finish or deadline-out, then stop the
listener) and blocks until the server exits.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import BadRequestError, ServiceError

logger = logging.getLogger("repro.service")


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server carrying the service instance."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: "Tuple[str, int]", service):
        super().__init__(address, ServiceRequestHandler)
        self.service = service


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Parses requests, delegates to the service, writes JSON back."""

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        service = self.server.service
        parsed = urlsplit(self.path)
        query = {
            key: values[-1]
            for key, values in parse_qs(parsed.query).items()
        }
        try:
            body = self._read_body(service) if method == "POST" else None
            status, payload, headers = service.handle(
                method, parsed.path, query, body
            )
        except ServiceError as error:
            status, payload, headers = error.status, error.body(), {}
            if error.retry_after is not None:
                headers["Retry-After"] = str(
                    max(1, int(round(error.retry_after)))
                )
        except Exception:  # pragma: no cover - last-resort guard
            logger.exception("unhandled error serving %s %s",
                             method, self.path)
            fallback = ServiceError("internal service error")
            status, payload, headers = 500, fallback.body(), {}
        self._respond(status, payload, headers)

    def _read_body(self, service) -> "dict | None":
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # An unparsable length means the body's extent is unknown:
            # the connection cannot be resynchronized, so close it.
            self.close_connection = True
            raise BadRequestError(
                "Content-Length header is not an integer"
            ) from None
        if length > service.settings.max_body_bytes:
            # The oversized body is rejected *unread*; on a keep-alive
            # connection the unread bytes would be parsed as the next
            # request line, so the connection must close with the 400.
            self.close_connection = True
            raise BadRequestError(
                f"request body of {length} bytes exceeds the "
                f"{service.settings.max_body_bytes}-byte limit"
            )
        if length <= 0:
            return None
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequestError(
                f"request body is not valid JSON: {error}"
            ) from None
        if not isinstance(body, dict):
            raise BadRequestError("request body must be a JSON object")
        return body

    def _respond(self, status: int, payload: dict, headers: dict) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if self.close_connection:
            # Tell the client the persistent connection ends here
            # (e.g. after an unread oversized body).
            self.send_header("Connection", "close")
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:
        logger.debug("%s - %s", self.address_string(), format % args)


def make_server(
    service, host: str = "127.0.0.1", port: int = 8177
) -> ServiceHTTPServer:
    """Bind a server (``port=0`` picks a free port) without serving."""
    return ServiceHTTPServer((host, port), service)


def serve(
    service,
    host: str = "127.0.0.1",
    port: int = 8177,
    install_signals: bool = True,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    Prints the bound address (``serving on http://host:port``) once
    ready, so callers binding port 0 can discover the real port.
    """
    server = make_server(service, host, port)
    service.start()
    drained = threading.Event()

    def _initiate_drain(signum=None, frame=None):
        if drained.is_set():
            return
        drained.set()
        service.begin_drain()

        def _finish():
            service.drain()
            server.shutdown()

        threading.Thread(target=_finish, daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, _initiate_drain)
        signal.signal(signal.SIGINT, _initiate_drain)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port}", flush=True)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        if not drained.is_set():
            service.begin_drain()
            service.drain()
    print("drained cleanly", flush=True)
    return 0
