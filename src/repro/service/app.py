"""The characterization service: request handling and job execution.

``CharacterizationService`` is the transport-independent core — it
validates requests, serves warm content-hash cache hits inline (200),
admits cold work into the bounded queue (202 + job id), executes jobs
on worker threads with retry/backoff/jitter, and enforces the fixed
failure policies:

* **queue full** -> 429 + ``Retry-After`` (admission is bounded; the
  service never buffers unbounded work).
* **deadline overrun** -> 504; the watchdog expires overdue jobs and
  cooperative checkpoints between compute stages abandon the work.
* **worker casualty** -> retried with bounded backoff plus
  deterministic jitter; dataset jobs additionally delegate to the
  crash-isolated :func:`~repro.experiments.build_dataset` machinery.
* **repeated infrastructure failure** -> the circuit breaker opens and
  cold submissions get 503 + ``Retry-After`` until a half-open probe
  succeeds.
* **degraded cache directory** (:class:`~repro.errors.CacheDegradedWarning`)
  -> the service switches to compute-without-cache and keeps answering
  200/202; ``/readyz`` reports the degradation.
* **SIGTERM** -> graceful drain: stop admitting, finish or deadline-out
  in-flight jobs; all cache writes go through the atomic writers, so a
  drain never leaves torn entries.

Every response body is produced by the pure ``*_payload`` builders
below, so a faulted-then-recovered service returns bit-for-bit the same
JSON a cold serial computation would.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..config import DEFAULT_CONFIG, ReproConfig
from ..errors import (
    BadRequestError,
    CircuitOpenError,
    DatasetBuildError,
    DeadlineExceededError,
    NotFoundError,
    ReproError,
    ServiceError,
    UnknownBenchmarkError,
)
from .breaker import CircuitBreaker
from .jobs import EXPIRED, FAILED, Job, JobRegistry
from .queue import ServiceQueue

logger = logging.getLogger("repro.service")

#: Request kinds the service accepts.
KINDS = ("characterize", "hpc", "phases", "dataset")


@dataclass(frozen=True)
class ServiceSettings:
    """Operational knobs of the service (robustness policy included).

    Attributes:
        cache_dir: cache root (default: the repo-local directory of
            :func:`~repro.experiments.dataset.default_cache_dir`).
        use_cache: disable all cache levels when False.
        queue_capacity: bounded admission-queue size (429 beyond).
        workers: worker threads executing cold jobs.
        default_deadline: per-request deadline (seconds) when the
            request does not carry ``deadline_ms``.
        max_deadline: ceiling any requested deadline is clamped to.
        max_attempts: compute attempts per job before it fails.
        retry_backoff: base of the bounded exponential retry sleep.
        retry_jitter_seed: seeds the deterministic retry jitter
            (default: derived per job id).
        breaker_failure_threshold / breaker_recovery: circuit-breaker
            trip threshold and open-state duration (seconds).
        watchdog_interval: seconds between deadline sweeps.
        ready_high_water: queue-depth fraction beyond which
            ``/readyz`` reports not-ready.
        max_finished_jobs: terminal jobs retained for polling.
        retry_after: ``Retry-After`` hint (seconds) on 429/503 bodies.
        dataset_jobs: worker *processes* a dataset job may use.
        drain_timeout: seconds granted to in-flight jobs on SIGTERM.
        max_trace_length: ceiling on requested trace lengths.
        max_body_bytes: largest accepted request body.
        shards: when set, cold characterize jobs compute through the
            shard-mergeable engine split into this many contiguous
            shards (bit-for-bit identical results; fills the per-shard
            cache level so overlapping traces reuse warm shards).
        state_dir: durable-state directory.  When set, admissions and
            terminal transitions are write-ahead journaled there
            (``journal-service-jobs.jsonl``): a restarted service
            serves previously-terminal jobs from the journal
            (byte-identical payloads) and re-admits interrupted ones
            through the normal queue.  ``None`` keeps jobs in memory
            only.
    """

    cache_dir: "Path | str | None" = None
    use_cache: bool = True
    queue_capacity: int = 64
    workers: int = 2
    default_deadline: float = 30.0
    max_deadline: float = 300.0
    max_attempts: int = 3
    retry_backoff: float = 0.05
    retry_jitter_seed: "int | None" = None
    breaker_failure_threshold: int = 5
    breaker_recovery: float = 5.0
    watchdog_interval: float = 0.05
    ready_high_water: float = 0.8
    max_finished_jobs: int = 256
    retry_after: float = 1.0
    dataset_jobs: int = 1
    drain_timeout: float = 10.0
    max_trace_length: int = 1_000_000
    max_body_bytes: int = 1 << 20
    state_dir: "Path | str | None" = None
    shards: "int | None" = None


# ---------------------------------------------------------------------------
# Pure payload builders (shared by warm/cold paths and the tests, so
# "bit-for-bit identical to a cold serial run" is checkable on bytes).
# ---------------------------------------------------------------------------


def characterize_payload(
    benchmark: str, trace_length: int, seed: int, values
) -> dict:
    """The response body of one characterize request."""
    from ..mica import characteristic_names

    return {
        "kind": "characterize",
        "benchmark": benchmark,
        "trace_length": trace_length,
        "seed": seed,
        "names": list(characteristic_names()),
        "values": [float(value) for value in values],
    }


def hpc_payload(
    benchmark: str, trace_length: int, seed: int, values
) -> dict:
    """The response body of one HPC request."""
    from ..uarch import HPC_METRIC_NAMES

    return {
        "kind": "hpc",
        "benchmark": benchmark,
        "trace_length": trace_length,
        "seed": seed,
        "names": list(HPC_METRIC_NAMES),
        "values": [float(value) for value in values],
    }


def phases_payload(
    benchmark: str,
    trace_length: int,
    seed: int,
    interval: int,
    signature: str,
    result,
    points,
) -> dict:
    """The response body of one phases request."""
    return {
        "kind": "phases",
        "benchmark": benchmark,
        "trace_length": trace_length,
        "seed": seed,
        "interval": interval,
        "signature": signature,
        "k": int(result.k),
        "assignments": [int(label) for label in result.assignments],
        "phase_sizes": [int(size) for size in result.phase_sizes()],
        "simulation_points": [int(point) for point in points],
    }


def dataset_payload(dataset) -> dict:
    """The response body of one dataset request."""
    return {
        "kind": "dataset",
        "names": list(dataset.names),
        "suites": list(dataset.suites),
        "mica_columns": list(dataset.mica_columns),
        "hpc_columns": list(dataset.hpc_columns),
        "mica": [[float(v) for v in row] for row in dataset.mica],
        "hpc": [[float(v) for v in row] for row in dataset.hpc],
    }


class CharacterizationService:
    """Characterization-as-a-service over the four-level cache.

    Args:
        config: trace length, seeds and characterization parameters
            used for requests that do not override them.
        settings: operational/robustness knobs.
    """

    def __init__(
        self,
        config: ReproConfig = DEFAULT_CONFIG,
        settings: "ServiceSettings | None" = None,
    ):
        from ..experiments.dataset import default_cache_dir

        self.config = config
        self.settings = settings or ServiceSettings()
        if self.settings.use_cache:
            self.cache_dir = Path(
                self.settings.cache_dir or default_cache_dir()
            )
        else:
            self.cache_dir = None
        self._journal = None
        if self.settings.state_dir is not None:
            from ..perf.journal import WriteAheadJournal

            state = Path(self.settings.state_dir)
            state.mkdir(parents=True, exist_ok=True)
            self._journal = WriteAheadJournal(
                state / "journal-service-jobs.jsonl"
            )
            self._journal.open()
        self.registry = JobRegistry(
            max_finished=self.settings.max_finished_jobs,
            journal=self._journal,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.settings.breaker_failure_threshold,
            recovery_seconds=self.settings.breaker_recovery,
        )
        self.queue = ServiceQueue(
            capacity=self.settings.queue_capacity,
            workers=self.settings.workers,
            execute=self._run_job,
            registry=self.registry,
            watchdog_interval=self.settings.watchdog_interval,
            retry_after=self.settings.retry_after,
        )
        self._started_at = time.monotonic()
        self._degraded = False
        self._recovered = False
        self._recovery: "Dict[str, object]" = {
            "recovered_terminal": 0,
            "resubmitted": 0,
            "repaired_torn_tail": False,
        }
        self._stats_lock = threading.Lock()
        self._stats: "Dict[str, int]" = {
            "submitted": 0,
            "warm_hits": 0,
            "completed": 0,
            "failed": 0,
            "retries": 0,
            "quarantines": 0,
        }

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "CharacterizationService":
        """Recover journaled jobs, start worker and watchdog threads."""
        self._recover_jobs()
        self.queue.start()
        return self

    def begin_drain(self) -> None:
        """Stop admitting new work (SIGTERM step 1)."""
        self.queue.begin_drain()

    def drain(self, timeout: "float | None" = None) -> bool:
        """Finish or deadline-out in-flight jobs, stop the threads."""
        result = self.queue.drain(
            self.settings.drain_timeout if timeout is None else timeout
        )
        if self._journal is not None:
            # Cancelled/finished drain outcomes are already journaled;
            # release the append handle for the next incarnation.
            self._journal.close()
        return result

    def _recover_jobs(self) -> None:
        """Rebuild job state from the write-ahead journal (restart).

        Replays the journal a previous incarnation left behind (its
        torn tail, if the kill landed mid-append, was repaired when the
        journal was opened): terminal jobs are restored so their poll
        URLs answer exactly as before the crash; admitted-but-unfinished
        jobs are re-admitted through the normal bounded queue under
        their original ids with a fresh default deadline — re-running
        them is idempotent because all compute is keyed by content
        hashes, so recovered work reuses every warm cache entry.  The
        journal is then compacted (one atomic rotation) to just the
        surviving jobs.
        """
        if self._journal is None or self._recovered:
            return
        self._recovered = True
        from ..errors import service_error_from_code

        records = self._journal.records
        truncation = self._journal.truncation
        admissions: "Dict[str, dict]" = {}
        terminals: "Dict[str, dict]" = {}
        floor = 0
        for record in records:
            job_id = record.get("job")
            if not isinstance(job_id, str):
                continue
            suffix = job_id.rsplit("-", 1)[-1]
            try:
                floor = max(floor, int(suffix, 16))
            except ValueError:
                pass
            if record.get("event") == "job-admitted":
                admissions[job_id] = record
            elif record.get("event") == "job-terminal":
                terminals[job_id] = record
        self.registry.resume_ids_above(floor)

        compacted = []
        interrupted = []
        for job_id, admission in admissions.items():
            terminal = terminals.get(job_id)
            if terminal is None:
                interrupted.append(admission)
                continue
            compacted.append(admission)
            compacted.append(terminal)
        compacted.extend(
            {"event": "job-admitted", "job": job_id,
             "kind": record.get("kind"), "params": {}}
            for job_id, record in terminals.items()
            if job_id not in admissions
        )
        compacted.extend(
            record for job_id, record in terminals.items()
            if job_id not in admissions
        )
        compacted.extend(interrupted)
        try:
            self._journal.rewrite(compacted)
        except OSError:
            logger.warning(
                "service journal compaction failed; continuing with "
                "the un-compacted journal", exc_info=True,
            )

        restored = 0
        for job_id, terminal in terminals.items():
            params = admissions.get(job_id, {}).get("params") or {}
            error = None
            if terminal.get("state") != "done":
                detail = terminal.get("error") or {}
                error = service_error_from_code(
                    str(detail.get("code", "internal")),
                    str(detail.get("message", "job failed")),
                    retry_after=detail.get("retry_after"),
                )
            self.registry.restore_terminal(
                job_id,
                str(terminal.get("kind", "characterize")),
                params,
                str(terminal.get("state", "failed")),
                result=terminal.get("result"),
                error=error,
            )
            restored += 1

        resubmitted = 0
        for admission in interrupted:
            job = self.registry.restore_queued(
                str(admission["job"]),
                str(admission.get("kind", "characterize")),
                admission.get("params") or {},
                time.monotonic() + self.settings.default_deadline,
            )
            try:
                self.queue.submit(job)
            except ServiceError as error:
                job.finish_error(error, state="cancelled")
                continue
            resubmitted += 1

        self._recovery = {
            "recovered_terminal": restored,
            "resubmitted": resubmitted,
            "repaired_torn_tail": truncation is not None,
        }
        if restored or resubmitted or truncation is not None:
            logger.info(
                "journal recovery: %d terminal job(s) restored, %d "
                "interrupted job(s) re-admitted%s",
                restored, resubmitted,
                ", torn journal tail repaired" if truncation else "",
            )

    @property
    def degraded(self) -> bool:
        """Whether the service is in compute-without-cache mode."""
        return self._degraded

    @property
    def draining(self) -> bool:
        return self.queue.draining

    # -- transport-facing entry point ----------------------------------

    def handle(
        self,
        method: str,
        path: str,
        query: "Dict[str, str] | None" = None,
        body: "dict | None" = None,
    ) -> "Tuple[int, dict, Dict[str, str]]":
        """Serve one request; returns (status, payload, headers).

        Never raises for request-level failures: every
        :class:`~repro.errors.ServiceError` becomes its documented
        (status, typed body) pair, with ``Retry-After`` attached for
        429/503 refusals.
        """
        query = query or {}
        try:
            return self._route(method, path, query, body)
        except ServiceError as error:
            headers = {}
            if error.retry_after is not None:
                headers["Retry-After"] = str(
                    max(1, int(round(error.retry_after)))
                )
            return error.status, error.body(), headers
        except ReproError as error:
            wrapped = ServiceError(f"{type(error).__name__}: {error}")
            return wrapped.status, wrapped.body(), {}

    def _route(
        self, method: str, path: str, query: dict, body: "dict | None"
    ) -> "Tuple[int, dict, Dict[str, str]]":
        if method == "GET":
            if path == "/healthz":
                from .health import liveness_body

                return 200, liveness_body(self._started_at), {}
            if path == "/readyz":
                from .health import readiness

                status, payload = readiness(
                    self.breaker.snapshot(),
                    self.queue.depth(),
                    self.queue.capacity,
                    self.draining,
                    self._degraded,
                    high_water_fraction=self.settings.ready_high_water,
                    job_counts=self.registry.counts(),
                    recovery=(
                        dict(self._recovery)
                        if self._journal is not None else None
                    ),
                )
                return status, payload, {}
            if path == "/v1/stats":
                return 200, self.stats(), {}
            if path.startswith("/v1/jobs/"):
                job_id = path[len("/v1/jobs/"):]
                return self._job_status(job_id, query)
        elif method == "POST":
            if path.startswith("/v1/"):
                kind = path[len("/v1/"):]
                if kind in KINDS:
                    return self._submit(kind, body or {}, query)
        raise NotFoundError(f"no route for {method} {path}")

    # -- submission ----------------------------------------------------

    def _submit(
        self, kind: str, body: dict, query: dict
    ) -> "Tuple[int, dict, Dict[str, str]]":
        if not isinstance(body, dict):
            raise BadRequestError("request body must be a JSON object")
        params = self._validate(kind, body)
        with self._stats_lock:
            self._stats["submitted"] += 1

        warm = self._try_warm(kind, params)
        if warm is not None:
            with self._stats_lock:
                self._stats["warm_hits"] += 1
            return 200, warm, {"X-Repro-Source": "cache"}

        deadline_seconds = self._deadline_seconds(body)
        probe = False
        if not self.queue.draining:
            allowed, probe = self.breaker.acquire()
            if not allowed:
                raise CircuitOpenError(
                    "circuit breaker is open after repeated worker "
                    "failures; cold work is refused",
                    retry_after=max(
                        self.breaker.retry_after(),
                        self.settings.retry_after,
                    ),
                )
        # A probe job owes the breaker exactly one outcome.  Workers
        # report success/failure; _settle_probe fires on the job's
        # terminal transition and returns an unreported slot (queue
        # refusal, watchdog expiry, drain cancellation, typed error),
        # so a probe can never leak and wedge the breaker half-open.
        job = self.registry.create(
            kind, params, time.monotonic() + deadline_seconds,
            probe=probe,
            on_terminal=self._settle_probe if probe else None,
        )
        try:
            self.queue.submit(job)
        except ServiceError as error:
            job.finish_error(error, state="cancelled")
            raise

        wait_for = self._wait_seconds(body, query, deadline_seconds)
        if wait_for > 0.0:
            job.wait(wait_for)
            return self._job_response(job)
        headers = {"Location": f"/v1/jobs/{job.id}"}
        return 202, job.status_body(), headers

    def _deadline_seconds(self, body: dict) -> float:
        raw = body.get("deadline_ms", self.settings.default_deadline * 1000.0)
        try:
            seconds = float(raw) / 1000.0
        except (TypeError, ValueError):
            raise BadRequestError(
                f"deadline_ms must be a number, got {raw!r}"
            ) from None
        if seconds <= 0.0:
            raise BadRequestError("deadline_ms must be positive")
        return min(seconds, self.settings.max_deadline)

    def _wait_seconds(
        self, body: dict, query: dict, deadline_seconds: float
    ) -> float:
        raw = body.get("wait", query.get("wait"))
        if raw in (None, False, "", "0", "false"):
            return 0.0
        if raw in (True, "true", "1"):
            return deadline_seconds + 0.25
        try:
            return min(float(raw), deadline_seconds + 0.25)
        except (TypeError, ValueError):
            raise BadRequestError(
                f"wait must be a boolean or number of seconds, got {raw!r}"
            ) from None

    # -- validation ----------------------------------------------------

    def _validate(self, kind: str, body: dict) -> dict:
        from ..workloads import get_benchmark

        if kind == "dataset":
            names = body.get("benchmarks")
            if names is None:
                from ..workloads import all_benchmarks

                resolved = [b.full_name for b in all_benchmarks()]
            else:
                if not isinstance(names, (list, tuple)) or not names:
                    raise BadRequestError(
                        "benchmarks must be a non-empty list of names"
                    )
                try:
                    resolved = [
                        get_benchmark(str(name)).full_name
                        for name in names
                    ]
                except UnknownBenchmarkError as error:
                    raise NotFoundError(str(error)) from None
            return {
                "benchmarks": resolved,
                "trace_length": self._trace_length(body),
            }

        name = body.get("benchmark")
        if not isinstance(name, str) or not name:
            raise BadRequestError(
                "benchmark must be a non-empty string"
            )
        try:
            benchmark = get_benchmark(name)
        except UnknownBenchmarkError as error:
            raise NotFoundError(str(error)) from None
        params = {
            "benchmark": benchmark.full_name,
            "trace_length": self._trace_length(body),
            "seed": self._int_field(body, "seed", 0, minimum=0),
        }
        if kind == "phases":
            params["interval"] = self._int_field(
                body, "interval", 5_000, minimum=1
            )
            signature = body.get("signature", "bbv")
            from ..phases.detect import SIGNATURE_KINDS

            if signature not in SIGNATURE_KINDS:
                raise BadRequestError(
                    f"unknown signature kind: {signature!r} "
                    f"(expected one of {SIGNATURE_KINDS})"
                )
            params["signature"] = signature
        return params

    def _trace_length(self, body: dict) -> int:
        length = self._int_field(
            body, "trace_length", self.config.trace_length, minimum=1
        )
        if length > self.settings.max_trace_length:
            raise BadRequestError(
                f"trace_length {length} exceeds the service ceiling "
                f"of {self.settings.max_trace_length}"
            )
        return length

    @staticmethod
    def _int_field(
        body: dict, field: str, default: int, minimum: int
    ) -> int:
        raw = body.get(field, default)
        if isinstance(raw, bool) or not isinstance(raw, int):
            raise BadRequestError(
                f"{field} must be an integer, got {raw!r}"
            )
        if raw < minimum:
            raise BadRequestError(
                f"{field} must be >= {minimum}, got {raw}"
            )
        return raw

    # -- warm path -----------------------------------------------------

    def _warm_cache_dir(self) -> "Path | None":
        if self.cache_dir is None or self._degraded:
            return None
        return self.cache_dir

    def _try_warm(self, kind: str, params: dict) -> "Optional[dict]":
        """Serve from the content-hash caches without queueing.

        Only complete hits count — a warm trace with a cold
        characterization entry is still cold work.  Never computes.
        """
        directory = self._warm_cache_dir()
        if directory is None:
            return None
        if kind == "dataset":
            from ..experiments.dataset import load_cached_dataset

            dataset = load_cached_dataset(
                self._config_for(params),
                benchmark_names=params["benchmarks"],
                cache_dir=directory,
            )
            return None if dataset is None else dataset_payload(dataset)
        if kind == "phases":
            return None  # no phase-level cache exists (yet)

        from ..perf import CharacterizationCache, HpcCache, TraceCache
        from ..workloads import get_benchmark

        benchmark = get_benchmark(params["benchmark"])
        trace = TraceCache(directory).load(
            benchmark.profile, params["trace_length"], params["seed"]
        )
        if trace is None:
            return None
        if kind == "characterize":
            values = CharacterizationCache(directory).load(
                trace, self._config_for(params)
            )
            if values is None:
                return None
            return characterize_payload(
                params["benchmark"], params["trace_length"],
                params["seed"], values,
            )
        values = HpcCache(directory).load(trace)
        if values is None:
            return None
        return hpc_payload(
            params["benchmark"], params["trace_length"],
            params["seed"], values,
        )

    def _config_for(self, params: dict) -> ReproConfig:
        length = params.get("trace_length", self.config.trace_length)
        if length == self.config.trace_length:
            return self.config
        return self.config.with_overrides(trace_length=length)

    # -- job polling ---------------------------------------------------

    def _job_status(
        self, job_id: str, query: dict
    ) -> "Tuple[int, dict, Dict[str, str]]":
        job = self.registry.get(job_id)
        raw_wait = query.get("wait")
        if raw_wait:
            try:
                wait_for = float(raw_wait)
            except ValueError:
                raise BadRequestError(
                    f"wait must be a number of seconds, got {raw_wait!r}"
                ) from None
            job.wait(min(wait_for, max(job.remaining(), 0.0) + 0.25))
        return self._job_response(job)

    def _job_response(
        self, job: Job
    ) -> "Tuple[int, dict, Dict[str, str]]":
        if job.state == "done":
            return 200, job.result, {"X-Repro-Source": "computed"}
        if job.terminal:
            error = job.error or ServiceError("job failed")
            headers = {}
            if error.retry_after is not None:
                headers["Retry-After"] = str(
                    max(1, int(round(error.retry_after)))
                )
            return error.status, error.body(), headers
        return 202, job.status_body(), {}

    # -- job execution (worker threads) --------------------------------

    def _run_job(self, job: Job) -> None:
        if not job.start_running():
            return
        while True:
            job.attempts += 1
            if job.terminal or job.cancel_requested.is_set():
                return
            if job.overdue():
                job.finish_error(
                    DeadlineExceededError(
                        f"job {job.id} exceeded its deadline before "
                        f"attempt {job.attempts}"
                    ),
                    state=EXPIRED,
                )
                return
            try:
                payload = self._compute(job)
            except ServiceError as error:
                state = (
                    EXPIRED
                    if isinstance(error, DeadlineExceededError)
                    else FAILED
                )
                if job.finish_error(error, state=state):
                    with self._stats_lock:
                        self._stats["failed"] += 1
                return
            except Exception as error:  # worker casualty: retry
                job.claim_probe()
                self.breaker.record_failure()
                self._note_degradation()
                if job.attempts >= self.settings.max_attempts:
                    failure = ServiceError(
                        f"job failed after {job.attempts} attempt(s): "
                        f"{type(error).__name__}: {error}"
                    )
                    if job.finish_error(failure):
                        with self._stats_lock:
                            self._stats["failed"] += 1
                    return
                with self._stats_lock:
                    self._stats["retries"] += 1
                self._backoff(job)
                continue
            else:
                job.claim_probe()
                self.breaker.record_success()
                self._note_degradation()
                if job.finish_ok(payload):
                    with self._stats_lock:
                        self._stats["completed"] += 1
                return

    def _settle_probe(self, job: Job) -> None:
        """Terminal callback of a probe job: return an unreported slot.

        Fires exactly once, on whichever thread wins the job's terminal
        transition.  When a worker already reported the probe's outcome
        (``claim_probe`` lost), the slot is settled and nothing happens
        here; otherwise the probe produced no infrastructure evidence
        and the half-open slot goes back to the breaker.
        """
        if job.claim_probe():
            self.breaker.release_probe()

    def _backoff(self, job: Job) -> None:
        from ..experiments.dataset import _retry_delay

        seed = self.settings.retry_jitter_seed
        delay = _retry_delay(
            self.settings.retry_backoff,
            job.attempts - 1,
            jitter_seed=seed if seed is not None else 0,
            token=job.id,
        )
        time.sleep(max(0.0, min(delay, job.remaining())))

    def _checkpoint(self, job: Job) -> None:
        """Cooperative deadline/cancel check between compute stages."""
        if job.cancel_requested.is_set() or job.overdue():
            raise DeadlineExceededError(
                f"job {job.id} exceeded its deadline mid-computation"
            )

    def _note_degradation(self) -> None:
        if self.cache_dir is None or self._degraded:
            return
        from ..perf import is_cache_degraded

        if is_cache_degraded(self.cache_dir):
            self._degraded = True
            logger.warning(
                "cache directory %s degraded; serving "
                "compute-without-cache from now on", self.cache_dir,
            )

    def _compute_cache_dir(self) -> "str | None":
        directory = self._warm_cache_dir()
        return None if directory is None else str(directory)

    def _compute(self, job: Job) -> dict:
        from ..perf import faults, integrity

        faults.maybe_fail_service_job(
            job.params.get("benchmark", job.kind)
        )
        try:
            if job.kind == "characterize":
                return self._compute_characterize(job)
            if job.kind == "hpc":
                return self._compute_hpc(job)
            if job.kind == "phases":
                return self._compute_phases(job)
            return self._compute_dataset(job)
        finally:
            # Verified loads quarantine corrupt entries as a side
            # effect; fold them into the operational counters whether
            # the attempt succeeded or not.
            events = integrity.drain_quarantine_log()
            if events:
                with self._stats_lock:
                    self._stats["quarantines"] += len(events)

    def _job_trace(self, job: Job):
        from ..perf import cached_generate_trace
        from ..workloads import get_benchmark

        benchmark = get_benchmark(job.params["benchmark"])
        return cached_generate_trace(
            benchmark.profile,
            job.params["trace_length"],
            seed=job.params["seed"],
            cache_dir=self._compute_cache_dir(),
        )

    def _compute_characterize(self, job: Job) -> dict:
        from ..perf import cached_characterize

        trace = self._job_trace(job)
        self._checkpoint(job)
        vector = cached_characterize(
            trace, self._config_for(job.params),
            self._compute_cache_dir(),
            shards=self.settings.shards,
        )
        return characterize_payload(
            job.params["benchmark"], job.params["trace_length"],
            job.params["seed"], vector.values,
        )

    def _compute_hpc(self, job: Job) -> dict:
        from ..perf import cached_collect_hpc

        trace = self._job_trace(job)
        self._checkpoint(job)
        vector = cached_collect_hpc(
            trace, cache_dir=self._compute_cache_dir()
        )
        return hpc_payload(
            job.params["benchmark"], job.params["trace_length"],
            job.params["seed"], vector.values,
        )

    def _compute_phases(self, job: Job) -> dict:
        from ..phases import detect_phases, simulation_points

        trace = self._job_trace(job)
        self._checkpoint(job)
        result = detect_phases(
            trace,
            interval=job.params["interval"],
            seed=job.params["seed"],
            signature=job.params["signature"],
            config=self._config_for(job.params),
        )
        self._checkpoint(job)
        points = simulation_points(result)
        return phases_payload(
            job.params["benchmark"], job.params["trace_length"],
            job.params["seed"], job.params["interval"],
            job.params["signature"], result, points,
        )

    def _compute_dataset(self, job: Job) -> dict:
        from ..experiments import build_dataset
        from ..workloads import get_benchmark

        population = [
            get_benchmark(name) for name in job.params["benchmarks"]
        ]
        directory = self._compute_cache_dir()
        try:
            dataset = build_dataset(
                self._config_for(job.params),
                benchmarks=population,
                cache_dir=None if directory is None else Path(directory),
                use_cache=directory is not None,
                jobs=self.settings.dataset_jobs,
                strict=True,
                max_attempts=self.settings.max_attempts,
                retry_backoff=self.settings.retry_backoff,
                retry_jitter_seed=self.settings.retry_jitter_seed,
                deadline=max(job.remaining(), 0.01),
            )
        except DatasetBuildError as error:
            report = getattr(error, "report", None)
            self._record_pool_rebuilds(job, report)
            self._record_report_quarantines(report)
            if job.overdue():
                raise DeadlineExceededError(
                    f"dataset job {job.id} exceeded its deadline: "
                    f"{error}"
                ) from error
            raise BrokenProcessPool(str(error)) from error
        self._record_pool_rebuilds(job, dataset.report)
        self._record_report_quarantines(dataset.report)
        return dataset_payload(dataset)

    def _record_pool_rebuilds(self, job: Job, report) -> None:
        """Repeated ``BrokenProcessPool`` rebuilds feed the breaker."""
        if report is None or not report.pool_rebuilds:
            return
        job.claim_probe()
        for _ in range(report.pool_rebuilds):
            self.breaker.record_failure()

    def _record_report_quarantines(self, report) -> None:
        """Quarantines hit inside worker *processes* never touch this
        process's quarantine log; the build report carries them."""
        if report is None or not report.quarantines:
            return
        with self._stats_lock:
            self._stats["quarantines"] += len(report.quarantines)

    # -- stats ---------------------------------------------------------

    def stats(self) -> dict:
        """Operational counters (also exposed at ``/v1/stats``)."""
        with self._stats_lock:
            counters = dict(self._stats)
        counters.update({
            "expired": self.queue.expired_total,
            "rejected": self.queue.rejected_total,
            "queue_depth": self.queue.depth(),
            "queue_capacity": self.queue.capacity,
            "breaker": self.breaker.snapshot(),
            "cache_degraded": self._degraded,
            "draining": self.draining,
            "jobs": self.registry.counts(),
        })
        if self._journal is not None:
            counters["journal"] = dict(self._recovery)
        return counters
