"""Bounded admission queue, worker threads and the deadline watchdog.

Admission is strictly bounded: ``capacity`` queued jobs at most, a full
queue rejects with :class:`~repro.errors.QueueFullError` (served as 429
+ ``Retry-After``) — the service can never buffer unbounded work in
memory.  A fixed pool of daemon worker threads drains the queue; each
job is executed by the callable the service installs.

The *watchdog* is a separate thread that periodically sweeps every
non-terminal job and expires the overdue ones: the job transitions to
``expired`` (first-writer-wins, so a worker finishing late cannot
overwrite the 504), its cooperative cancel flag is set, and the event
is counted and reported through the service log.  Cooperative
checkpoints in the executor (before start, between retry attempts)
observe the flag; a genuinely wedged computation cannot be interrupted
mid-numpy-call, but its job is still answered on time and its eventual
result abandoned.

Draining (SIGTERM) stops admission immediately — submissions raise
:class:`~repro.errors.ServiceDrainingError` — and gives in-flight jobs
until the drain timeout to finish; whatever remains is cancelled with a
typed error.  Workers only ever go through the atomic cache writers, so
a drain never leaves torn entries behind.
"""

from __future__ import annotations

import logging
import queue as queue_module
import threading
from typing import Callable, List, Optional

from ..errors import (
    JobCancelledError,
    QueueFullError,
    ServiceDrainingError,
)
from .jobs import Job, JobRegistry, QUEUED, RUNNING

logger = logging.getLogger("repro.service")


class ServiceQueue:
    """Admission-controlled work queue with deadline watchdog.

    Args:
        capacity: maximum queued (not yet running) jobs.
        workers: worker-thread count.
        execute: callable invoked with each admitted :class:`Job`.
        registry: the job registry the watchdog sweeps.
        watchdog_interval: seconds between deadline sweeps.
        retry_after: the ``Retry-After`` hint attached to 429s.
    """

    def __init__(
        self,
        capacity: int,
        workers: int,
        execute: "Callable[[Job], None]",
        registry: JobRegistry,
        watchdog_interval: float = 0.05,
        retry_after: float = 1.0,
    ):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        if workers < 1:
            raise ValueError("worker count must be >= 1")
        self.capacity = capacity
        self.retry_after = retry_after
        self._execute = execute
        self._registry = registry
        self._watchdog_interval = watchdog_interval
        self._queue: "queue_module.Queue[Optional[Job]]" = (
            queue_module.Queue(maxsize=capacity)
        )
        self._threads: "List[threading.Thread]" = []
        self._watchdog: "Optional[threading.Thread]" = None
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._workers = workers
        # Counters are bumped from handler threads (submit) and the
        # watchdog thread concurrently; += is a read-modify-write, so
        # unguarded increments lose updates.
        self._counter_lock = threading.Lock()
        self.expired_total = 0
        self.rejected_total = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spawn the worker and watchdog threads (idempotent)."""
        if self._threads:
            return
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._watchdog = threading.Thread(
            target=self._watchdog_loop,
            name="repro-service-watchdog",
            daemon=True,
        )
        self._watchdog.start()

    def begin_drain(self) -> None:
        """Stop admitting new jobs (submissions now get 503)."""
        self._draining.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self, timeout: float = 10.0) -> bool:
        """Finish or cancel everything, then stop the threads.

        In-flight and queued jobs get ``timeout`` seconds (their own
        deadlines still apply — the watchdog keeps running during the
        drain); jobs still alive after that are cancelled with a typed
        :class:`~repro.errors.JobCancelledError`.

        Returns:
            True when every job reached a terminal state on its own.
        """
        import time

        self.begin_drain()
        deadline = time.monotonic() + timeout
        clean = True
        while True:
            active = self._registry.active()
            if not active:
                break
            if time.monotonic() >= deadline:
                clean = False
                for job in active:
                    job.finish_error(
                        JobCancelledError(
                            "service drained before the job finished"
                        ),
                        state="cancelled",
                    )
                break
            time.sleep(min(self._watchdog_interval, 0.02))
        self._stop.set()
        for _ in self._threads:
            # Wake workers blocked on an empty queue.
            try:
                self._queue.put_nowait(None)
            except queue_module.Full:
                break
        for thread in self._threads:
            thread.join(timeout=2.0)
        if self._watchdog is not None:
            self._watchdog.join(timeout=2.0)
        return clean

    # -- admission -----------------------------------------------------

    def submit(self, job: Job) -> None:
        """Admit one job or raise the typed refusal.

        Raises:
            ServiceDrainingError: the service is shutting down.
            QueueFullError: the bounded queue is at capacity.
        """
        if self._draining.is_set() or self._stop.is_set():
            raise ServiceDrainingError(
                "service is draining; not admitting new work",
                retry_after=self.retry_after,
            )
        try:
            self._queue.put_nowait(job)
        except queue_module.Full:
            with self._counter_lock:
                self.rejected_total += 1
            raise QueueFullError(
                f"admission queue is full ({self.capacity} jobs); "
                "retry later",
                retry_after=self.retry_after,
            ) from None

    def depth(self) -> int:
        """Queued-but-not-yet-running jobs (approximate, lock-free)."""
        return self._queue.qsize()

    # -- threads -------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job = self._queue.get(timeout=0.1)
            except queue_module.Empty:
                continue
            if job is None:
                continue
            try:
                if job.terminal:
                    # Expired or cancelled while waiting in the queue.
                    continue
                self._execute(job)
            # repro: lint-ok[typed-errors] last-ditch crash isolation:
            # the worker thread must survive any executor bug, and the
            # job itself is already answered with a typed error upstream
            except Exception:  # pragma: no cover - executor guards
                logger.exception("service worker crashed on %s", job.id)
            finally:
                self._queue.task_done()

    def _watchdog_loop(self) -> None:
        while not self._stop.is_set():
            for job in self._registry.active():
                if job.state in (QUEUED, RUNNING) and job.overdue():
                    from ..errors import DeadlineExceededError

                    if job.finish_error(
                        DeadlineExceededError(
                            f"job {job.id} exceeded its deadline"
                        ),
                        state="expired",
                    ):
                        with self._counter_lock:
                            self.expired_total += 1
                        logger.warning(
                            "watchdog expired overdue job %s (%s)",
                            job.id, job.kind,
                        )
            self._stop.wait(self._watchdog_interval)
