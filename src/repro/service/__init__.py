"""Characterization-as-a-service over the four-level cache.

The ROADMAP's top open item: a long-running HTTP service (stdlib
``ThreadingHTTPServer``, no new dependencies) exposing
characterize/HPC/phases/dataset over the existing ``cached_*`` stack,
engineered robustness-first.  Every failure mode has a fixed, tested
policy (the service analogue of the PR 6 cache semantics):

============================  =====================================
condition                     response
============================  =====================================
warm content-hash hit         200 immediately (no queueing)
cold work                     202 + job id, poll/wait endpoints
admission queue full          429 + ``Retry-After`` (bounded memory)
deadline overrun              504; watchdog expires overdue jobs
worker casualty               retried with backoff + jitter
breaker open (repeat crash)   503 + ``Retry-After`` on cold work
cache directory degraded      compute-without-cache, still 200/202
draining (SIGTERM)            503 on new work; in-flight finishes
============================  =====================================

Modules: :mod:`~repro.service.app` (service core + payload builders),
:mod:`~repro.service.routes` (HTTP transport + ``serve``),
:mod:`~repro.service.queue` (bounded admission + watchdog),
:mod:`~repro.service.breaker` (circuit breaker),
:mod:`~repro.service.jobs` (job lifecycle/registry),
:mod:`~repro.service.health` (liveness/readiness bodies).
"""

from .app import (
    CharacterizationService,
    ServiceSettings,
    characterize_payload,
    dataset_payload,
    hpc_payload,
    phases_payload,
)
from .breaker import CircuitBreaker
from .jobs import Job, JobRegistry
from .queue import ServiceQueue
from .routes import ServiceHTTPServer, make_server, serve

__all__ = [
    "CharacterizationService",
    "CircuitBreaker",
    "Job",
    "JobRegistry",
    "ServiceHTTPServer",
    "ServiceQueue",
    "ServiceSettings",
    "characterize_payload",
    "dataset_payload",
    "hpc_payload",
    "make_server",
    "phases_payload",
    "serve",
]
