"""Figure 1: HPC-space distance versus MICA-space distance.

For every benchmark tuple the paper plots the Euclidean distance in the
(z-scored) hardware-performance-counter space against the distance in
the (z-scored) microarchitecture-independent space, reporting a modest
correlation coefficient (0.46 in the paper) — the quantitative core of
the pitfall argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import pearson
from ..reporting import ascii_scatter
from .dataset import WorkloadDataset


@dataclass(frozen=True)
class Fig1Result:
    """Figure 1 data.

    Attributes:
        mica_distances / hpc_distances: condensed distance vectors
            (same tuple order).
        correlation: Pearson correlation between the two.
    """

    mica_distances: np.ndarray
    hpc_distances: np.ndarray
    correlation: float

    @property
    def tuples(self) -> int:
        """Number of benchmark tuples."""
        return len(self.mica_distances)

    def format(self) -> str:
        """Human-readable report section."""
        plot = ascii_scatter(
            self.mica_distances,
            self.hpc_distances,
            x_label="distance in uarch-independent space",
            y_label="distance in HPC space",
        )
        return (
            "Figure 1: distance in HPC space vs distance in "
            "microarchitecture-independent space\n"
            f"benchmark tuples: {self.tuples}\n"
            f"correlation coefficient: {self.correlation:.3f} "
            "(paper: 0.46)\n\n" + plot
        )


def run_fig1(dataset: WorkloadDataset) -> Fig1Result:
    """Compute the Figure 1 scatter data from a workload data set."""
    mica_distances = dataset.mica_distances()
    hpc_distances = dataset.hpc_distances()
    return Fig1Result(
        mica_distances=mica_distances,
        hpc_distances=hpc_distances,
        correlation=pearson(mica_distances, hpc_distances),
    )
