"""Figure 4: ROC curves of the characterization methods.

Compares how well each reduced characteristic set identifies program
similarity (ground truth: HPC-space distance beyond the fixed 20%
threshold): all 47 characteristics, the GA-selected subset, and
correlation elimination retaining 17, 12 and 7 characteristics.  The
paper's areas: all = 0.72, GA = 0.69, CE-17 = 0.67, CE-12/7 = 0.64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


from ..analysis import (
    GeneticSelector,
    RocCurve,
    pairwise_distances,
    retain_by_correlation,
    roc_curve,
)
from ..config import DEFAULT_CONFIG, ReproConfig
from ..reporting import ascii_lines, format_table
from .dataset import WorkloadDataset


@dataclass(frozen=True)
class Fig4Result:
    """Figure 4 data.

    Attributes:
        curves: ROC curve per method label.
        areas: AUC per method label.
        selected: characteristic indices used per method (0-based).
    """

    curves: Dict[str, RocCurve]
    areas: Dict[str, float]
    selected: Dict[str, Tuple[int, ...]]

    def format(self) -> str:
        """Human-readable report section."""
        paper_areas = {
            "all-47": 0.72,
            "GA": 0.69,
            "CE-17": 0.67,
            "CE-12": 0.64,
            "CE-7": 0.64,
        }
        rows = []
        for label, area in self.areas.items():
            rows.append(
                [
                    label,
                    len(self.selected[label]),
                    f"{area:.3f}",
                    f"{paper_areas.get(label, float('nan')):.2f}",
                ]
            )
        table = format_table(
            ["method", "#chars", "AUC", "paper AUC"],
            rows,
            align_right=[False, True, True, True],
        )
        plot = ascii_lines(
            {
                label: (curve.false_positive_rate, curve.true_positive_rate)
                for label, curve in self.curves.items()
            },
            x_label="1 - specificity",
            y_label="sensitivity",
        )
        return (
            "Figure 4: ROC curves of the characterization methods\n"
            + table
            + "\n\n"
            + plot
        )


def run_fig4(
    dataset: WorkloadDataset,
    config: ReproConfig = DEFAULT_CONFIG,
    ce_sizes: Tuple[int, ...] = (17, 12, 7),
    ga_result=None,
) -> Fig4Result:
    """Compute the Figure 4 ROC comparison.

    Args:
        dataset: the workload data set.
        config: GA parameters and the classification threshold.
        ce_sizes: retained-set sizes for correlation elimination.
        ga_result: a precomputed GA selection (one is computed with the
            config's GA settings otherwise).
    """
    mica_normalized = dataset.mica_normalized()
    hpc_distances = dataset.hpc_distances()
    threshold = config.similarity_threshold

    methods: Dict[str, Tuple[int, ...]] = {
        "all-47": tuple(range(mica_normalized.shape[1]))
    }
    if ga_result is None:
        selector = GeneticSelector(
            population=config.ga_population,
            generations=config.ga_generations,
            seed=config.ga_seed,
        )
        ga_result = selector.select(mica_normalized)
    methods["GA"] = ga_result.selected
    for size in ce_sizes:
        methods[f"CE-{size}"] = tuple(
            retain_by_correlation(mica_normalized, size)
        )

    curves: Dict[str, RocCurve] = {}
    areas: Dict[str, float] = {}
    for label, indices in methods.items():
        distances = pairwise_distances(mica_normalized[:, list(indices)])
        curve = roc_curve(
            hpc_distances,
            distances,
            reference_threshold_fraction=threshold,
        )
        curves[label] = curve
        areas[label] = curve.area
    return Fig4Result(curves=curves, areas=areas, selected=methods)
