"""Figures 2 and 3: the bzip2-versus-blast case study.

The paper's concrete pitfall instance: SPEC CPU2000's bzip2 and
BioInfoMark's blast look *similar* on hardware performance counters
(Figure 2) while their microarchitecture-independent characteristics are
*different* (Figure 3) — most strikingly the working sets, the
global-history branch predictability and the global store strides.

Each figure normalizes per characteristic by the maximum observed value
across the compared benchmarks, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis import max_normalize
from ..errors import AnalysisError
from ..mica import CHARACTERISTICS
from ..reporting import format_table
from ..uarch.hpc import HPC_METRIC_NAMES, HPC_MIX_NAMES
from .dataset import WorkloadDataset

#: Mix columns in the MICA matrix (prepended to the HPC vector for the
#: Figure 2 comparison, as the paper does).
_MIX_SLICE = slice(0, 6)


@dataclass(frozen=True)
class CaseStudyResult:
    """Figures 2-3 data for one benchmark pair.

    Attributes:
        name_a / name_b: the two benchmarks compared.
        hpc_labels / hpc_a / hpc_b: Figure 2 (max-normalized HPC metrics
            plus instruction mix).
        mica_labels / mica_a / mica_b: Figure 3 (max-normalized MICA
            characteristics, Table II order).
        hpc_distance_rank / mica_distance_rank: the pair's distance
            percentile among all tuples in each space (low HPC rank +
            high MICA rank = a false-positive pair).
    """

    name_a: str
    name_b: str
    hpc_labels: Tuple[str, ...]
    hpc_a: np.ndarray
    hpc_b: np.ndarray
    mica_labels: Tuple[str, ...]
    mica_a: np.ndarray
    mica_b: np.ndarray
    hpc_distance_rank: float
    mica_distance_rank: float

    def _comparison_table(
        self, labels: Tuple[str, ...], a: np.ndarray, b: np.ndarray
    ) -> str:
        rows: List[List[str]] = []
        for label, value_a, value_b in zip(labels, a, b):
            delta = abs(float(value_a) - float(value_b))
            rows.append(
                [
                    label,
                    f"{value_a:.3f}",
                    f"{value_b:.3f}",
                    f"{delta:.3f}",
                    "#" * round(delta * 20),
                ]
            )
        return format_table(
            ["characteristic", self.name_a.split("/")[1],
             self.name_b.split("/")[1], "|delta|", ""],
            rows,
            align_right=[False, True, True, True, False],
        )

    def format(self) -> str:
        """Human-readable report section."""
        lines = [
            f"Figures 2-3 case study: {self.name_a} vs {self.name_b}",
            "",
            f"pair distance percentile in HPC space:   "
            f"{self.hpc_distance_rank:.0%} (similar when low)",
            f"pair distance percentile in MICA space:  "
            f"{self.mica_distance_rank:.0%} (dissimilar when high)",
            "",
            "Figure 2: hardware performance counter characteristics "
            "(max-normalized)",
            self._comparison_table(self.hpc_labels, self.hpc_a, self.hpc_b),
            "",
            "Figure 3: microarchitecture-independent characteristics "
            "(max-normalized, Table II order)",
            self._comparison_table(self.mica_labels, self.mica_a, self.mica_b),
        ]
        return "\n".join(lines)


def find_false_positive_pair(dataset: WorkloadDataset) -> "Tuple[str, str]":
    """The most striking false-positive pair: smallest HPC-distance
    percentile combined with the largest MICA-distance percentile."""
    from scipy.stats import rankdata

    hpc_distances = dataset.hpc_distances()
    mica_distances = dataset.mica_distances()
    hpc_ranks = rankdata(hpc_distances) / len(hpc_distances)
    mica_ranks = rankdata(mica_distances) / len(mica_distances)
    best = int(np.argmax(mica_ranks - hpc_ranks))
    # Invert the condensed index.
    n = len(dataset)
    position = 0
    for i in range(n - 1):
        row_pairs = n - 1 - i
        if best < position + row_pairs:
            j = i + 1 + (best - position)
            return dataset.names[i], dataset.names[j]
        position += row_pairs
    raise AnalysisError("condensed index out of range")  # pragma: no cover


def run_case_study(
    dataset: WorkloadDataset,
    benchmark_a: str = "spec2000/bzip2/graphic",
    benchmark_b: str = "bioinfomark/blast/protein",
) -> CaseStudyResult:
    """Compute the Figures 2-3 comparison for a benchmark pair.

    When the requested pair is not in the data set (subset runs), the
    most striking false-positive pair is compared instead.
    """
    try:
        index_a = dataset.index_of(benchmark_a)
        index_b = dataset.index_of(benchmark_b)
    except AnalysisError:
        benchmark_a, benchmark_b = find_false_positive_pair(dataset)
        index_a = dataset.index_of(benchmark_a)
        index_b = dataset.index_of(benchmark_b)

    # Figure 2: HPC metrics + instruction mix, normalized by the maximum
    # across the whole population (so the two bars are comparable).
    mix = dataset.mica[:, _MIX_SLICE]
    hpc_extended = np.hstack([dataset.hpc, mix])
    hpc_normalized = max_normalize(hpc_extended)
    hpc_labels = tuple(HPC_METRIC_NAMES) + tuple(HPC_MIX_NAMES)

    mica_normalized = max_normalize(dataset.mica)
    mica_labels = tuple(
        characteristic.key for characteristic in CHARACTERISTICS
    )

    hpc_distances = dataset.hpc_distances()
    mica_distances = dataset.mica_distances()
    from ..analysis import condensed_index

    pair = condensed_index(index_a, index_b, len(dataset))
    hpc_rank = float((hpc_distances <= hpc_distances[pair]).mean())
    mica_rank = float((mica_distances <= mica_distances[pair]).mean())

    return CaseStudyResult(
        name_a=dataset.names[index_a],
        name_b=dataset.names[index_b],
        hpc_labels=hpc_labels,
        hpc_a=hpc_normalized[index_a],
        hpc_b=hpc_normalized[index_b],
        mica_labels=mica_labels,
        mica_a=mica_normalized[index_a],
        mica_b=mica_normalized[index_b],
        hpc_distance_rank=hpc_rank,
        mica_distance_rank=mica_rank,
    )
