"""Extension: input-set sensitivity of the characteristic vectors.

Prior work the paper cites (Eeckhout, Vandierendonck & De Bosschere,
JILP 2003) quantifies how much a program's behavior moves when only its
*input* changes.  Table I contains several programs with multiple
inputs (bzip2, gzip, gcc, perlbmk, vortex, art, eon, vpr, hmmer, ...),
so the same question can be asked of this data set: are same-program
pairs closer in the workload space than cross-program pairs?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..analysis import condensed_index
from ..reporting import format_table
from .dataset import WorkloadDataset


@dataclass(frozen=True)
class InputSensitivityResult:
    """Same-program vs cross-program distance statistics.

    Attributes:
        per_program: program -> (input count, mean intra-program
            distance) for programs with >= 2 inputs.
        intra_mean: mean distance over all same-program pairs.
        inter_mean: mean distance over all cross-program pairs.
        intra_percentile: where the average same-program pair falls in
            the overall distance distribution (0 = closest).
    """

    per_program: Dict[str, Tuple[int, float]]
    intra_mean: float
    inter_mean: float
    intra_percentile: float

    @property
    def separation(self) -> float:
        """inter/intra distance ratio (> 1: inputs matter less than
        program identity)."""
        if self.intra_mean == 0.0:
            return float("inf")
        return self.inter_mean / self.intra_mean

    def format(self) -> str:
        """Human-readable report section."""
        rows = [
            [program, inputs, f"{distance:.3f}"]
            for program, (inputs, distance) in sorted(
                self.per_program.items()
            )
        ]
        table = format_table(
            ["program", "#inputs", "mean intra-program distance"],
            rows,
            align_right=[False, True, True],
        )
        return (
            "Input-set sensitivity (extension; cf. Eeckhout et al. JILP'03)\n"
            f"same-program pairs mean distance : {self.intra_mean:.3f}\n"
            f"cross-program pairs mean distance: {self.inter_mean:.3f}\n"
            f"separation ratio                 : {self.separation:.2f}x\n"
            f"same-program pair percentile     : {self.intra_percentile:.0%}\n\n"
            + table
        )


def run_input_sensitivity(dataset: WorkloadDataset) -> InputSensitivityResult:
    """Compare same-program to cross-program distances in MICA space."""
    distances = dataset.mica_distances()
    n = len(dataset)
    programs = ["/".join(name.split("/")[:2]) for name in dataset.names]

    by_program: Dict[str, List[int]] = {}
    for index, program in enumerate(programs):
        by_program.setdefault(program, []).append(index)

    intra: List[float] = []
    per_program: Dict[str, Tuple[int, float]] = {}
    for program, indices in by_program.items():
        if len(indices) < 2:
            continue
        pair_distances = [
            float(distances[condensed_index(a, b, n)])
            for position, a in enumerate(indices)
            for b in indices[position + 1:]
        ]
        per_program[program.split("/")[1]] = (
            len(indices),
            float(np.mean(pair_distances)),
        )
        intra.extend(pair_distances)

    if not intra:
        # No program has multiple inputs in this population; report a
        # degenerate result rather than warn-laden NaNs.
        return InputSensitivityResult(
            per_program={},
            intra_mean=0.0,
            inter_mean=float(distances.mean()) if len(distances) else 0.0,
            intra_percentile=0.0,
        )

    intra_array = np.array(intra)
    intra_mean = float(intra_array.mean())
    total_intra_mass = intra_array.sum()
    inter_mean = float(
        (distances.sum() - total_intra_mass)
        / (len(distances) - len(intra_array))
    )
    percentile = float((distances <= intra_mean).mean())
    return InputSensitivityResult(
        per_program=per_program,
        intra_mean=intra_mean,
        inter_mean=inter_mean,
        intra_percentile=percentile,
    )
