"""Extension: benchmark-suite subsetting from the cluster structure.

The paper's stated payoff for workload comparison is simulation-time
reduction: benchmarks that behave like existing ones need not be
simulated.  This driver operationalizes that: cluster the population in
the reduced space (as Figure 6 does), keep one representative per
cluster, and quantify what the subset preserves —

* geometric coverage (distance of every dropped benchmark to its
  representative), and
* fidelity of suite-level hardware-metric estimates computed from the
  weighted representatives only (the subsetting literature's test).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import SubsetResult, format_subset, select_representatives
from ..config import DEFAULT_CONFIG, ReproConfig
from ..reporting import format_table
from ..uarch import HPC_METRIC_NAMES
from .dataset import WorkloadDataset
from .fig6_clusters import run_fig6


@dataclass(frozen=True)
class SubsettingResult:
    """Subset selection plus fidelity metrics.

    Attributes:
        subset: the representative selection.
        names: population benchmark names.
        hpc_errors: relative error of subset-estimated suite-mean HPC
            metrics, per metric.
        reduction: fraction of simulation work avoided.
    """

    subset: SubsetResult
    names: "tuple[str, ...]"
    hpc_errors: np.ndarray
    reduction: float

    def format(self) -> str:
        """Human-readable report section."""
        rows = [
            [name, f"{error:.1%}"]
            for name, error in zip(HPC_METRIC_NAMES, self.hpc_errors)
        ]
        table = format_table(
            ["suite-mean metric", "subset estimation error"],
            rows,
            align_right=[False, True],
        )
        return (
            "Benchmark subsetting (extension)\n"
            + format_subset(self.subset, list(self.names))
            + f"\nsimulation reduction: {self.reduction:.0%}\n\n"
            + table
        )


def run_subsetting(
    dataset: WorkloadDataset,
    config: ReproConfig = DEFAULT_CONFIG,
    ga_result=None,
) -> SubsettingResult:
    """Select representatives in the GA-reduced space and evaluate."""
    fig6 = run_fig6(dataset, config, ga_result=ga_result)
    reduced = dataset.mica_normalized()[:, list(fig6.selected)]
    subset = select_representatives(reduced, fig6.clustering.result)
    errors = subset.estimation_error(dataset.hpc)
    reduction = 1.0 - subset.size / len(dataset)
    return SubsettingResult(
        subset=subset,
        names=dataset.names,
        hpc_errors=errors,
        reduction=reduction,
    )
