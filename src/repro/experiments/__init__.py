"""Experiment drivers: one module per table/figure of the paper.

========================  ==========================================
module                    paper artifact
========================  ==========================================
``dataset``               both workload spaces for all 122 benchmarks
``fig1_distance_scatter`` Figure 1 (distance scatter + correlation)
``table3_classification`` Table III (quadrant fractions)
``fig23_case_study``      Figures 2-3 (bzip2 vs blast case study)
``fig4_roc``              Figure 4 (ROC curves, AUCs)
``fig5_correlation``      Figure 5 (distance correlation vs retained)
``table4_selected``       Table IV (GA-selected characteristics) +
                          the measurement-cost model (3X speedup)
``fig6_clusters``         Figure 6 (k-means/BIC clusters, kiviats)
``phase_homogeneity``     extension: SimPoint-premise validation of
                          detected phases against per-interval HPC
``runner``                run everything, produce the full report
========================  ==========================================
"""

from .dataset import (
    BenchmarkBuildStatus,
    DatasetBuildReport,
    WorkloadDataset,
    build_dataset,
    clear_dataset_cache,
    dataset_journal_path,
    load_cached_dataset,
    resume_dataset,
)
from .fig1_distance_scatter import Fig1Result, run_fig1
from .table3_classification import Table3Result, run_table3
from .fig23_case_study import CaseStudyResult, run_case_study
from .fig4_roc import Fig4Result, run_fig4
from .fig5_correlation import Fig5Result, run_fig5
from .table4_selected import Table4Result, run_table4, measurement_cost
from .fig6_clusters import Fig6Result, run_fig6
from .input_sensitivity import InputSensitivityResult, run_input_sensitivity
from .phase_homogeneity import (
    PhaseHomogeneityResult,
    run_phase_homogeneity,
)
from .subsetting import SubsettingResult, run_subsetting
from .runner import run_all

__all__ = [
    "BenchmarkBuildStatus",
    "DatasetBuildReport",
    "WorkloadDataset",
    "build_dataset",
    "clear_dataset_cache",
    "dataset_journal_path",
    "load_cached_dataset",
    "resume_dataset",
    "Fig1Result",
    "run_fig1",
    "Table3Result",
    "run_table3",
    "CaseStudyResult",
    "run_case_study",
    "Fig4Result",
    "run_fig4",
    "Fig5Result",
    "run_fig5",
    "Table4Result",
    "run_table4",
    "measurement_cost",
    "Fig6Result",
    "run_fig6",
    "InputSensitivityResult",
    "run_input_sensitivity",
    "PhaseHomogeneityResult",
    "run_phase_homogeneity",
    "SubsettingResult",
    "run_subsetting",
    "run_all",
]
