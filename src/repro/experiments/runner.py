"""Run the full experiment suite and produce one report.

The GA selection is computed once and shared by Figures 4-6 and
Table IV, exactly as in the paper (one reduced space drives
everything).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import GeneticSelector
from ..config import DEFAULT_CONFIG, ReproConfig
from .dataset import WorkloadDataset, build_dataset
from .fig1_distance_scatter import Fig1Result, run_fig1
from .fig23_case_study import CaseStudyResult, run_case_study
from .fig4_roc import Fig4Result, run_fig4
from .fig5_correlation import Fig5Result, run_fig5
from .fig6_clusters import Fig6Result, run_fig6
from .input_sensitivity import InputSensitivityResult, run_input_sensitivity
from .subsetting import SubsettingResult, run_subsetting
from .table3_classification import Table3Result, run_table3
from .table4_selected import Table4Result, run_table4

_SEPARATOR = "\n" + "=" * 78 + "\n"


@dataclass(frozen=True)
class FullReport:
    """All experiment results for one data set."""

    dataset: WorkloadDataset
    fig1: Fig1Result
    table3: Table3Result
    case_study: CaseStudyResult
    fig4: Fig4Result
    fig5: Fig5Result
    table4: Table4Result
    fig6: Fig6Result
    input_sensitivity: "InputSensitivityResult | None" = None
    subsetting: "SubsettingResult | None" = None

    def format(self, kiviat_plots: bool = False) -> str:
        """Human-readable report section."""
        sections = [
            f"MICA reproduction report — {len(self.dataset)} benchmarks, "
            f"{self.dataset.config.trace_length:,} instructions/trace",
            self.fig1.format(),
            self.table3.format(),
            self.case_study.format(),
            self.fig4.format(),
            self.fig5.format(),
            self.table4.format(),
            self.fig6.format(kiviat_plots=kiviat_plots),
        ]
        if self.input_sensitivity is not None:
            sections.append(self.input_sensitivity.format())
        if self.subsetting is not None:
            sections.append(self.subsetting.format())
        return _SEPARATOR.join(sections)


def run_all(
    config: ReproConfig = DEFAULT_CONFIG,
    dataset: "WorkloadDataset | None" = None,
    progress: bool = False,
    include_extensions: bool = False,
    jobs: "int | None" = None,
    cache_dir=None,
    use_cache: bool = True,
) -> FullReport:
    """Build the data set (or reuse one) and run every experiment.

    With ``include_extensions`` the input-sensitivity and subsetting
    analyses (which have no paper counterpart) are appended.  ``jobs``,
    ``cache_dir`` and ``use_cache`` are forwarded to
    :func:`build_dataset`.
    """
    if dataset is None:
        dataset = build_dataset(
            config,
            progress=progress,
            jobs=jobs,
            cache_dir=cache_dir,
            use_cache=use_cache,
        )

    selector = GeneticSelector(
        population=config.ga_population,
        generations=config.ga_generations,
        seed=config.ga_seed,
    )
    ga_result = selector.select(dataset.mica_normalized())

    return FullReport(
        dataset=dataset,
        fig1=run_fig1(dataset),
        table3=run_table3(dataset, threshold=config.similarity_threshold),
        case_study=run_case_study(dataset),
        fig4=run_fig4(dataset, config, ga_result=ga_result),
        fig5=run_fig5(dataset, config, ga_result=ga_result),
        table4=run_table4(dataset, config, ga_result=ga_result),
        fig6=run_fig6(dataset, config, ga_result=ga_result),
        input_sensitivity=(
            run_input_sensitivity(dataset) if include_extensions else None
        ),
        subsetting=(
            run_subsetting(dataset, config, ga_result=ga_result)
            if include_extensions
            else None
        ),
    )
