"""Figure 6: clustering the 122 benchmarks in the reduced space.

K-means over the GA-selected characteristic subspace (z-scored), with K
chosen as the smallest value whose BIC score reaches 90% of the maximum
over K = 1..70 (the paper lands on 15 clusters).  Reports cluster
membership with suite composition, singleton (isolated) benchmarks, the
SPECfp-grouping observation, per-suite SPEC-similarity fractions, and
kiviat plots of cluster centroids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..analysis import (
    ClusteringResult,
    GeneticSelector,
    choose_k,
    kiviat_ascii,
    kiviat_normalize,
    kiviat_table,
)
from ..config import DEFAULT_CONFIG, ReproConfig
from ..mica import CHARACTERISTICS
from ..reporting import format_table
from .dataset import WorkloadDataset

#: The nine SPECfp programs the paper groups into one cluster, plus the
#: remaining five FP programs.
SPECFP_PROGRAMS = (
    "ammp", "applu", "apsi", "art", "equake", "facerec", "fma3d",
    "galgel", "lucas", "mesa", "mgrid", "sixtrack", "swim", "wupwise",
)


@dataclass(frozen=True)
class Fig6Result:
    """Figure 6 data.

    Attributes:
        clustering: the BIC-selected k-means outcome.
        members: cluster id -> benchmark names.
        selected: characteristic indices spanning the reduced space.
        singleton_names: benchmarks isolated in their own cluster.
        specfp_max_shared: size of the largest single-cluster group of
            SPECfp programs (paper: 9 of 14).
        suite_spec_similarity: per suite, the fraction of its
            benchmarks sharing a cluster with >= 1 SPEC benchmark.
        kiviat_data: min-max normalized reduced matrix (rows align with
            the dataset's benchmarks).
    """

    clustering: ClusteringResult
    members: Dict[int, List[str]]
    selected: Tuple[int, ...]
    singleton_names: List[str]
    specfp_max_shared: int
    suite_spec_similarity: Dict[str, float]
    kiviat_data: np.ndarray
    names: Tuple[str, ...]

    @property
    def k(self) -> int:
        return self.clustering.k

    def format(self, kiviat_plots: bool = True) -> str:
        """Human-readable report section."""
        lines = [
            "Figure 6: clustering in the reduced "
            f"{len(self.selected)}-dimensional space",
            f"chosen K = {self.k} (paper: 15; BIC within 90% of max over "
            "K = 1..70)",
            "",
        ]
        axis_labels = [CHARACTERISTICS[i].key for i in self.selected]
        order = sorted(
            self.members, key=lambda c: len(self.members[c]), reverse=True
        )
        for cluster in order:
            names = self.members[cluster]
            suites = sorted({name.split("/")[0] for name in names})
            lines.append(
                f"cluster {cluster:>2} ({len(names):>3} benchmarks; "
                f"suites: {', '.join(suites)})"
            )
            for name in sorted(names):
                lines.append(f"    {name}")
            if kiviat_plots:
                center_rows = [self.names.index(name) for name in names]
                centroid = self.kiviat_data[center_rows].mean(axis=0)
                lines.append("")
                lines.append(kiviat_ascii(centroid.tolist(), radius=5))
            lines.append("")
        lines.append(
            "isolated benchmarks (singleton clusters): "
            + (", ".join(sorted(self.singleton_names)) or "none")
        )
        lines.append(
            f"largest single-cluster SPECfp group: {self.specfp_max_shared} "
            "of 14 (paper: 9 of 14)"
        )
        rows = [
            [suite, f"{fraction:.0%}"]
            for suite, fraction in sorted(self.suite_spec_similarity.items())
        ]
        lines.append("")
        lines.append(
            format_table(
                ["suite", "benchmarks sharing a cluster with SPEC"],
                rows,
                align_right=[False, True],
                title="suite-level similarity to SPEC CPU2000:",
            )
        )
        lines.append("")
        lines.append("cluster-centroid kiviat table (axes = selected chars):")
        order_names = [f"cluster {c}" for c in order]
        centroids = np.vstack(
            [
                self.kiviat_data[
                    [self.names.index(name) for name in self.members[c]]
                ].mean(axis=0)
                for c in order
            ]
        )
        lines.append(kiviat_table(order_names, centroids, axis_labels))
        return "\n".join(lines)


def run_fig6(
    dataset: WorkloadDataset,
    config: ReproConfig = DEFAULT_CONFIG,
    ga_result=None,
    k_range: "Tuple[int, int] | None" = None,
) -> Fig6Result:
    """Cluster the population in the GA-reduced space."""
    mica_normalized = dataset.mica_normalized()
    if ga_result is None:
        selector = GeneticSelector(
            population=config.ga_population,
            generations=config.ga_generations,
            seed=config.ga_seed,
        )
        ga_result = selector.select(mica_normalized)
    selected = ga_result.selected
    reduced = mica_normalized[:, list(selected)]

    clustering = choose_k(
        reduced,
        k_range=k_range or config.kmeans_k_range,
        score_fraction=config.bic_score_fraction,
        seed=config.seed,
    )
    members: Dict[int, List[str]] = {}
    for cluster in range(clustering.result.k):
        indices = clustering.members(cluster)
        members[cluster] = [dataset.names[i] for i in indices]

    singleton_names = [
        members[cluster][0] for cluster in clustering.singleton_clusters()
    ]

    # SPECfp grouping: per cluster, count distinct SPECfp *programs*.
    specfp_count_by_cluster: Dict[int, set] = {}
    for cluster, names in members.items():
        programs = {
            name.split("/")[1]
            for name in names
            if name.startswith("spec2000/")
            and name.split("/")[1] in SPECFP_PROGRAMS
        }
        specfp_count_by_cluster[cluster] = programs
    specfp_max_shared = max(
        (len(programs) for programs in specfp_count_by_cluster.values()),
        default=0,
    )

    # Per-suite SPEC-similarity.
    cluster_of = {}
    for cluster, names in members.items():
        for name in names:
            cluster_of[name] = cluster
    clusters_with_spec = {
        cluster
        for cluster, names in members.items()
        if any(name.startswith("spec2000/") for name in names)
    }
    suite_similarity: Dict[str, float] = {}
    for suite in sorted(set(dataset.suites)):
        if suite == "spec2000":
            continue
        suite_names = [
            name for name in dataset.names if name.startswith(suite + "/")
        ]
        shared = sum(
            1 for name in suite_names if cluster_of[name] in clusters_with_spec
        )
        suite_similarity[suite] = shared / len(suite_names)

    kiviat_data = kiviat_normalize(dataset.mica[:, list(selected)])
    return Fig6Result(
        clustering=clustering,
        members=members,
        selected=selected,
        singleton_names=singleton_names,
        specfp_max_shared=specfp_max_shared,
        suite_spec_similarity=suite_similarity,
        kiviat_data=kiviat_data,
        names=dataset.names,
    )
