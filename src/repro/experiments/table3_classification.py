"""Table III: quadrant classification of benchmark tuples.

Classifies every benchmark tuple as true/false positive/negative using
20%-of-maximum distance thresholds in both spaces.  The paper reports
FN 0.2%, TP 56.9%, TN 1.8%, FP 41.1% — the large false-positive
fraction is the pitfall.  A threshold sensitivity sweep (10/20/30%) is
included as an ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..analysis import QuadrantFractions, classify_quadrants
from ..reporting import format_table
from .dataset import WorkloadDataset


@dataclass(frozen=True)
class Table3Result:
    """Table III data.

    Attributes:
        quadrants: fractions at the paper's 20% thresholds.
        sensitivity: fractions at alternative thresholds, keyed by the
            (reference, candidate) threshold pair.
    """

    quadrants: QuadrantFractions
    sensitivity: Dict[Tuple[float, float], QuadrantFractions]

    def format(self) -> str:
        """Human-readable report section."""
        lines = [
            "Table III: classifying benchmark tuples "
            "(thresholds: 20% of max distance)",
            self.quadrants.format(),
            "",
            "paper reference: FN 0.2% / TP 56.9% / TN 1.8% / FP 41.1%",
            "",
        ]
        rows = []
        for (ref, cand), fractions in sorted(self.sensitivity.items()):
            rows.append(
                [
                    f"{ref:.0%}/{cand:.0%}",
                    f"{fractions.false_negative:.1%}",
                    f"{fractions.true_positive:.1%}",
                    f"{fractions.true_negative:.1%}",
                    f"{fractions.false_positive:.1%}",
                ]
            )
        lines.append(
            format_table(
                ["thresholds", "FN", "TP", "TN", "FP"],
                rows,
                align_right=[False, True, True, True, True],
                title="threshold sensitivity (ablation):",
            )
        )
        return "\n".join(lines)


def run_table3(
    dataset: WorkloadDataset,
    threshold: float = 0.2,
) -> Table3Result:
    """Compute Table III (plus the threshold-sensitivity ablation)."""
    hpc_distances = dataset.hpc_distances()
    mica_distances = dataset.mica_distances()
    quadrants = classify_quadrants(
        hpc_distances,
        mica_distances,
        reference_threshold_fraction=threshold,
        candidate_threshold_fraction=threshold,
    )
    sensitivity = {}
    for fraction in (0.1, 0.2, 0.3):
        sensitivity[(fraction, fraction)] = classify_quadrants(
            hpc_distances,
            mica_distances,
            reference_threshold_fraction=fraction,
            candidate_threshold_fraction=fraction,
        )
    return Table3Result(quadrants=quadrants, sensitivity=sensitivity)
