"""Table IV: the GA-selected key characteristics + measurement cost.

Reports the characteristics the genetic algorithm retains (the paper's
Table IV lists eight: percentage loads, input operands, register
dependence <= 8, local load stride <= 64, global load stride <= 512,
local store stride <= 4096, D-stream 4KB working set, 256-entry-window
ILP) and estimates the instrumentation-time saving with a measurement
cost model calibrated to the paper's numbers (all 47 characteristics:
110 machine-days; the GA's eight: 37 machine-days; ~3X).

The cost model charges one *analysis pass* per needed sub-measurement:

===========================  ===============================
sub-measurement              cost (machine-days)
===========================  ===============================
instruction mix (any)        3
ILP, per window size         12
register operand counting    3
register degree of use       3
register dependency dists    8 (one pass for all bounds)
working set, D stream        4
working set, I stream        4
strides, per stream kind     2.5 (local/global x load/store)
PPM, per predictor variant   5.5
===========================  ===============================

The full set costs 3 + 4*12 + 3 + 3 + 8 + 4 + 4 + 4*2.5 + 4*5.5 = 105
machine-days (~paper's 110); the paper's Table IV subset costs
3 + 12 + 3 + 8 + 4 + 3*2.5 = 37.5 (~paper's 37).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..analysis import GAResult, GeneticSelector
from ..config import DEFAULT_CONFIG, ReproConfig
from ..mica import CHARACTERISTICS
from ..reporting import format_table
from .dataset import WorkloadDataset

#: Paper Table IV, as 0-based indices into the Table II order:
#: loads(1), input operands(11), dep<=8(16), local load<=64(26),
#: global load<=512(32), local store<=4096(38), D-page WS(21), ILP-256(10).
PAPER_TABLE4_INDICES: Tuple[int, ...] = (0, 10, 15, 25, 31, 37, 20, 9)


def measurement_cost(selected: Sequence[int]) -> float:
    """Estimated instrumentation cost (machine-days) of measuring a
    characteristic subset, using the calibrated shared-pass cost model.

    Args:
        selected: 0-based characteristic indices (Table II order).
    """
    selected = set(selected)
    cost = 0.0
    # Instruction mix: one counting pass covers all six.
    if selected & set(range(0, 6)):
        cost += 3.0
    # ILP: one idealized-simulation pass per window size.
    for window_index in range(6, 10):
        if window_index in selected:
            cost += 12.0
    # Register traffic.
    if 10 in selected:
        cost += 3.0  # Operand counting.
    if 11 in selected:
        cost += 3.0  # Degree of use.
    if selected & set(range(12, 19)):
        cost += 8.0  # One dependency-distance pass for all bounds.
    # Working sets.
    if selected & {19, 20}:
        cost += 4.0  # D-stream.
    if selected & {21, 22}:
        cost += 4.0  # I-stream.
    # Strides: one pass per (scope x op) stream.
    for start in (23, 28, 33, 38):
        if selected & set(range(start, start + 5)):
            cost += 2.5
    # PPM: one pass per predictor variant.
    for index in range(43, 47):
        if index in selected:
            cost += 5.5
    return cost


@dataclass(frozen=True)
class Table4Result:
    """Table IV data.

    Attributes:
        ga: the GA selection outcome.
        full_cost / selected_cost: cost-model estimates (machine-days).
        paper_overlap: how many selected characteristics fall in the
            same Table II *category* as the paper's eight.
    """

    ga: GAResult
    full_cost: float
    selected_cost: float
    paper_overlap: int

    @property
    def speedup(self) -> float:
        """Measurement speedup over collecting everything."""
        if self.selected_cost == 0.0:
            return float("inf")
        return self.full_cost / self.selected_cost

    def format(self) -> str:
        """Human-readable report section."""
        rows = []
        for position, index in enumerate(self.ga.selected, start=1):
            characteristic = CHARACTERISTICS[index]
            rows.append(
                [position, characteristic.index, characteristic.category,
                 characteristic.description]
            )
        table = format_table(
            ["#", "Table II no.", "category", "characteristic"],
            rows,
            align_right=[True, True, False, False],
        )
        paper_rows = [
            [i + 1, CHARACTERISTICS[index].description]
            for i, index in enumerate(PAPER_TABLE4_INDICES)
        ]
        paper_table = format_table(
            ["#", "paper's Table IV"], paper_rows, align_right=[True, False]
        )
        return (
            "Table IV: key characteristics selected by the GA\n"
            f"selected: {self.ga.n_selected} characteristics, "
            f"fitness {self.ga.fitness:.3f}, distance correlation "
            f"{self.ga.rho:.3f}\n"
            + table
            + "\n\n"
            + paper_table
            + "\n\n"
            "measurement cost model (machine-days):\n"
            f"  all 47 characteristics : {self.full_cost:6.1f}  "
            "(paper: ~110)\n"
            f"  GA-selected subset     : {self.selected_cost:6.1f}  "
            "(paper: ~37)\n"
            f"  speedup                : {self.speedup:6.2f}x "
            "(paper: ~3X)\n"
            f"category overlap with the paper's eight: "
            f"{self.paper_overlap}/{self.ga.n_selected}"
        )


def run_table4(
    dataset: WorkloadDataset,
    config: ReproConfig = DEFAULT_CONFIG,
    ga_result: "GAResult | None" = None,
) -> Table4Result:
    """Run (or reuse) the GA selection and build the Table IV report."""
    if ga_result is None:
        selector = GeneticSelector(
            population=config.ga_population,
            generations=config.ga_generations,
            seed=config.ga_seed,
        )
        ga_result = selector.select(dataset.mica_normalized())

    paper_categories = {
        CHARACTERISTICS[index].category for index in PAPER_TABLE4_INDICES
    }
    overlap = sum(
        1
        for index in ga_result.selected
        if CHARACTERISTICS[index].category in paper_categories
    )
    return Table4Result(
        ga=ga_result,
        full_cost=measurement_cost(range(len(CHARACTERISTICS))),
        selected_cost=measurement_cost(ga_result.selected),
        paper_overlap=overlap,
    )
