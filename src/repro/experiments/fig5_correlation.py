"""Figure 5: distance-correlation fidelity versus retained count.

For correlation elimination, the Pearson correlation between the
distances in the full 47-characteristic space and in the reduced space
is traced as characteristics are progressively removed; the GA's single
operating point is overlaid.  In the paper, the GA achieves 0.876 with
8 characteristics while correlation elimination needs 17 to reach
0.823 — the GA dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..analysis import (
    GeneticSelector,
    correlation_elimination_order,
    pairwise_distances,
    pearson,
)
from ..config import DEFAULT_CONFIG, ReproConfig
from ..reporting import ascii_lines, format_table
from .dataset import WorkloadDataset


@dataclass(frozen=True)
class Fig5Result:
    """Figure 5 data.

    Attributes:
        ce_curve: retained-count -> distance correlation, for
            correlation elimination (descending counts).
        ga_point: ``(n_selected, rho)`` of the GA solution.
        ga_selected: GA-selected characteristic indices (0-based).
    """

    ce_curve: Dict[int, float]
    ga_point: Tuple[int, float]
    ga_selected: Tuple[int, ...]

    def ce_at(self, retained: int) -> float:
        """CE correlation at a retained-count (for tests/benches)."""
        return self.ce_curve[retained]

    def format(self) -> str:
        """Human-readable report section."""
        counts = sorted(self.ce_curve, reverse=True)
        sample = [c for c in counts if c in (46, 40, 32, 24, 17, 12, 8, 7, 4, 2)]
        rows = [[c, f"{self.ce_curve[c]:.3f}"] for c in sample]
        table = format_table(
            ["retained", "CE distance correlation"],
            rows,
            align_right=[True, True],
        )
        ga_n, ga_rho = self.ga_point
        plot = ascii_lines(
            {
                "CE": (
                    np.array(counts, dtype=float),
                    np.array([self.ce_curve[c] for c in counts]),
                ),
                "*GA": (
                    np.array([ga_n, ga_n], dtype=float),
                    np.array([0.0, ga_rho]),
                ),
            },
            x_label="number of retained characteristics",
            y_label="distance correlation with full space",
        )
        return (
            "Figure 5: distance correlation vs retained characteristics\n"
            f"GA point: {ga_n} characteristics, rho = {ga_rho:.3f} "
            "(paper: 8 chars, 0.876)\n"
            f"CE at 17: {self.ce_curve.get(17, float('nan')):.3f} "
            "(paper: 0.823)\n\n"
            + table
            + "\n\n"
            + plot
        )


def run_fig5(
    dataset: WorkloadDataset,
    config: ReproConfig = DEFAULT_CONFIG,
    ga_result=None,
) -> Fig5Result:
    """Compute the Figure 5 comparison."""
    mica_normalized = dataset.mica_normalized()
    full_distances = pairwise_distances(mica_normalized)
    n_features = mica_normalized.shape[1]

    order = correlation_elimination_order(mica_normalized)
    ce_curve: Dict[int, float] = {}
    removed = []
    remaining = list(range(n_features))
    for victim in order[:-1]:
        remaining.remove(victim)
        removed.append(victim)
        distances = pairwise_distances(mica_normalized[:, remaining])
        ce_curve[len(remaining)] = pearson(full_distances, distances)

    if ga_result is None:
        selector = GeneticSelector(
            population=config.ga_population,
            generations=config.ga_generations,
            seed=config.ga_seed,
        )
        ga_result = selector.select(mica_normalized)

    return Fig5Result(
        ce_curve=ce_curve,
        ga_point=(ga_result.n_selected, ga_result.rho),
        ga_selected=ga_result.selected,
    )
