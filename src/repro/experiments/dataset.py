"""Workload data-set construction.

Builds, for every benchmark in the registry, the two vectors all
experiments consume:

* the 47-dimensional microarchitecture-independent (MICA) vector, and
* the 7-dimensional hardware-performance-counter (HPC) vector.

Characterizing 122 benchmarks takes minutes, so the builder
parallelizes across processes and caches the resulting matrices on disk
(keyed by configuration and benchmark population) and in memory.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG, ReproConfig
from ..errors import AnalysisError
from ..analysis import pairwise_distances, zscore
from ..mica import characterize, characteristic_names
from ..uarch import HPC_METRIC_NAMES
from ..workloads import Benchmark, all_benchmarks

#: Cache format version — bump when characterization or trace-generation
#: semantics change.
CACHE_VERSION = 5

_MEMORY_CACHE: "Dict[str, WorkloadDataset]" = {}


@dataclass(frozen=True)
class WorkloadDataset:
    """The two workload spaces for a benchmark population.

    Attributes:
        names: benchmark full names (rows of both matrices).
        suites: suite name per benchmark.
        mica: (n x 47) microarchitecture-independent matrix.
        hpc: (n x 7) hardware-performance-counter matrix.
        config: the configuration the data was produced under.
    """

    names: Tuple[str, ...]
    suites: Tuple[str, ...]
    mica: np.ndarray
    hpc: np.ndarray
    config: ReproConfig

    def __len__(self) -> int:
        return len(self.names)

    def index_of(self, name: str) -> int:
        """Row index of a benchmark (exact or unique-suffix match).

        Raises:
            AnalysisError: when nothing or multiple benchmarks match.
        """
        if name in self.names:
            return self.names.index(name)
        matches = [
            i for i, full in enumerate(self.names)
            if full.endswith("/" + name) or f"/{name}/" in full
        ]
        if len(matches) != 1:
            raise AnalysisError(f"benchmark not found in dataset: {name!r}")
        return matches[0]

    # -- normalized views (computed on demand, cheap) -------------------

    def mica_normalized(self) -> np.ndarray:
        """Z-scored MICA matrix."""
        return zscore(self.mica)

    def hpc_normalized(self) -> np.ndarray:
        """Z-scored HPC matrix."""
        return zscore(self.hpc)

    def mica_distances(self) -> np.ndarray:
        """Condensed distances in the z-scored MICA space."""
        return pairwise_distances(self.mica_normalized())

    def hpc_distances(self) -> np.ndarray:
        """Condensed distances in the z-scored HPC space."""
        return pairwise_distances(self.hpc_normalized())

    @property
    def mica_columns(self) -> List[str]:
        return characteristic_names()

    @property
    def hpc_columns(self) -> List[str]:
        return list(HPC_METRIC_NAMES)


def _characterize_one(args: "Tuple[str, int, int, dict, str | None]"):
    """Worker: build one benchmark's MICA and HPC vectors.

    Runs in a separate process, so it re-resolves the benchmark from
    the registry by name (profiles are deterministic).  When a cache
    directory is given, the trace comes from the profile+seed-keyed
    :mod:`repro.perf` trace cache (warm runs never invoke the
    generator), the 47-dimensional vector goes through the
    content-keyed characterization cache above it, and the 7-metric
    vector through the content+machine-keyed HPC cache beside it (warm
    runs never run a pipeline model) — all shared across workers and
    runs.
    """
    name, trace_length, seed, config_kwargs, cache_dir = args
    # Local imports keep worker startup lean.
    from ..perf import (
        cached_characterize,
        cached_collect_hpc,
        cached_generate_trace,
    )
    from ..workloads import get_benchmark

    config = ReproConfig(**config_kwargs)
    benchmark = get_benchmark(name)
    trace = cached_generate_trace(
        benchmark.profile, trace_length, seed=seed, cache_dir=cache_dir
    )
    mica_vector = cached_characterize(trace, config, cache_dir).values
    hpc_vector = cached_collect_hpc(trace, cache_dir=cache_dir).values
    return name, mica_vector, hpc_vector


def _config_kwargs(config: ReproConfig) -> dict:
    return {
        "trace_length": config.trace_length,
        "seed": config.seed,
        "block_bytes": config.block_bytes,
        "page_bytes": config.page_bytes,
        "ilp_window_sizes": tuple(config.ilp_window_sizes),
        "reg_dep_thresholds": tuple(config.reg_dep_thresholds),
        "stride_thresholds": tuple(config.stride_thresholds),
        "ppm_max_order": config.ppm_max_order,
    }


def _cache_key(config: ReproConfig, names: Sequence[str]) -> str:
    # The upstream semantic versions are part of the key, so a
    # generation-protocol, analyzer or simulation bump invalidates
    # dataset matrices mechanically instead of relying on a manual
    # CACHE_VERSION bump.
    from ..perf.cache import CHAR_CACHE_VERSION
    from ..synth import TRACE_GEN_VERSION
    from ..uarch import HPC_SIM_VERSION

    payload = repr((CACHE_VERSION, TRACE_GEN_VERSION, CHAR_CACHE_VERSION,
                    HPC_SIM_VERSION,
                    sorted(_config_kwargs(config).items()), tuple(names)))
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def default_cache_dir() -> Path:
    """Cache directory (override with ``REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".mica_cache"


def clear_dataset_cache(cache_dir: "Path | None" = None) -> int:
    """Delete cached datasets (in-memory and on disk).

    Clears all four cache levels: the dataset-level matrices, the
    per-trace characterization entries, the per-trace HPC vectors and
    the generated-trace entries.

    Returns:
        Number of disk cache files removed.
    """
    from ..perf import CharacterizationCache, HpcCache, TraceCache

    _MEMORY_CACHE.clear()
    directory = cache_dir or default_cache_dir()
    removed = 0
    if directory.is_dir():
        for path in directory.glob("dataset-*.npz"):
            path.unlink()
            removed += 1
        removed += CharacterizationCache(directory).clear()
        removed += HpcCache(directory).clear()
        removed += TraceCache(directory).clear()
    return removed


def build_dataset(
    config: ReproConfig = DEFAULT_CONFIG,
    benchmarks: "Optional[Sequence[Benchmark]]" = None,
    cache_dir: "Path | None" = None,
    use_cache: bool = True,
    jobs: "int | None" = None,
    workers: "int | None" = None,
    progress: bool = False,
) -> WorkloadDataset:
    """Build (or load) the workload data set.

    Args:
        config: trace length, seeds and characterization parameters.
        benchmarks: population to characterize (default: all 122).
        cache_dir: disk cache location (default: repo-local
            ``.mica_cache``; override with ``REPRO_CACHE_DIR``).  Holds
            both the dataset-level matrices and the per-trace
            :mod:`repro.perf` characterization entries.
        use_cache: consult/populate the caches.
        jobs: worker-process count (default: ``os.cpu_count()``, capped
            at the benchmark count; 1 runs serially in-process).
        workers: deprecated alias for ``jobs``.
        progress: print one line per completed benchmark.

    The result is identical — bit-for-bit — whether built serially with
    cold caches or with ``jobs=N`` against warm caches; workers are pure
    functions of (benchmark name, config).
    """
    population = tuple(benchmarks if benchmarks is not None else all_benchmarks())
    names = tuple(benchmark.full_name for benchmark in population)
    suites = tuple(benchmark.suite for benchmark in population)
    key = _cache_key(config, names)

    if use_cache and key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]

    directory = cache_dir or default_cache_dir()
    cache_path = directory / f"dataset-{key}.npz"
    if use_cache and cache_path.is_file():
        archive = np.load(cache_path, allow_pickle=False)
        dataset = WorkloadDataset(
            names=names,
            suites=suites,
            mica=archive["mica"],
            hpc=archive["hpc"],
            config=config,
        )
        _MEMORY_CACHE[key] = dataset
        return dataset

    trace_cache_dir = str(directory) if use_cache else None
    pending = [
        (name, config.trace_length, 0, _config_kwargs(config),
         trace_cache_dir)
        for name in names
    ]
    results: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    if jobs is None:
        jobs = workers
    worker_count = min(jobs or os.cpu_count() or 1, len(pending))
    if worker_count > 1:
        with ProcessPoolExecutor(max_workers=worker_count) as pool:
            for name, mica_vector, hpc_vector in pool.map(
                _characterize_one, pending
            ):
                results[name] = (mica_vector, hpc_vector)
                if progress:
                    print(f"  [{len(results):>3}/{len(pending)}] {name}")
    else:
        for job in pending:
            name, mica_vector, hpc_vector = _characterize_one(job)
            results[name] = (mica_vector, hpc_vector)
            if progress:
                print(f"  [{len(results):>3}/{len(pending)}] {name}")

    mica = np.vstack([results[name][0] for name in names])
    hpc = np.vstack([results[name][1] for name in names])
    dataset = WorkloadDataset(
        names=names, suites=suites, mica=mica, hpc=hpc, config=config
    )
    if use_cache:
        directory.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(cache_path, mica=mica, hpc=hpc)
        _MEMORY_CACHE[key] = dataset
    return dataset
