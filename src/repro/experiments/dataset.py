"""Workload data-set construction.

Builds, for every benchmark in the registry, the two vectors all
experiments consume:

* the 47-dimensional microarchitecture-independent (MICA) vector, and
* the 7-dimensional hardware-performance-counter (HPC) vector.

Characterizing 122 benchmarks takes minutes, so the builder
parallelizes across processes and caches the resulting matrices on disk
(keyed by configuration and benchmark population) and in memory.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG, ReproConfig
from ..errors import AnalysisError, DatasetBuildError
from ..analysis import pairwise_distances, zscore
from ..mica import characteristic_names
from ..perf import integrity
from ..perf.integrity import QuarantineEvent
from ..uarch import HPC_METRIC_NAMES
from ..workloads import Benchmark, all_benchmarks

#: Cache format version — bump when characterization or trace-generation
#: semantics change.
CACHE_VERSION = 5

_MEMORY_CACHE: "Dict[str, WorkloadDataset]" = {}


@dataclass(frozen=True)
class BenchmarkBuildStatus:
    """Outcome of building one benchmark's vectors.

    Attributes:
        name: the benchmark's full name.
        ok: whether the vectors were produced.
        attempts: charged attempts (submissions whose failure — or
            success — is attributable to this benchmark; a worker lost
            to *another* benchmark's crash is not charged).
        seconds: wall time from first submission to final outcome.
        error: the final failure (``None`` when ok).
        quarantines: cache entries quarantined while building it.
    """

    name: str
    ok: bool
    attempts: int
    seconds: float
    error: Optional[str] = None
    quarantines: Tuple[QuarantineEvent, ...] = ()


@dataclass(frozen=True)
class DatasetBuildReport:
    """Per-benchmark accounting of one (possibly faulty) dataset build.

    Returned on every build via ``WorkloadDataset.report`` and carried
    by :class:`~repro.errors.DatasetBuildError` when ``strict=True``
    aborts, so a failure always names its benchmarks instead of dying
    as a bare ``BrokenProcessPoolError``.
    """

    statuses: Tuple[BenchmarkBuildStatus, ...]
    jobs: int
    pool_rebuilds: int = 0
    dataset_quarantines: Tuple[QuarantineEvent, ...] = ()

    @property
    def succeeded(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.statuses if s.ok)

    @property
    def failed(self) -> Tuple[BenchmarkBuildStatus, ...]:
        return tuple(s for s in self.statuses if not s.ok)

    @property
    def quarantines(self) -> Tuple[QuarantineEvent, ...]:
        events = list(self.dataset_quarantines)
        for status in self.statuses:
            events.extend(status.quarantines)
        return tuple(events)

    def format(self) -> str:
        """Human-readable multi-line summary (CLI failure output)."""
        failed = self.failed
        lines = [
            f"dataset build: {len(self.succeeded)}/{len(self.statuses)} "
            f"benchmarks ok, jobs={self.jobs}, "
            f"pool rebuilds={self.pool_rebuilds}, "
            f"quarantined entries={len(self.quarantines)}",
        ]
        for status in failed:
            lines.append(
                f"  FAILED {status.name} after {status.attempts} "
                f"attempt(s): {status.error}"
            )
        for event in self.quarantines:
            lines.append(
                f"  quarantined {event.path}: {event.reason}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class WorkloadDataset:
    """The two workload spaces for a benchmark population.

    Attributes:
        names: benchmark full names (rows of both matrices).
        suites: suite name per benchmark.
        mica: (n x 47) microarchitecture-independent matrix.
        hpc: (n x 7) hardware-performance-counter matrix.
        config: the configuration the data was produced under.
        report: per-benchmark build accounting (``None`` when the
            dataset came straight from the dataset-level cache).
    """

    names: Tuple[str, ...]
    suites: Tuple[str, ...]
    mica: np.ndarray
    hpc: np.ndarray
    config: ReproConfig
    report: Optional[DatasetBuildReport] = field(
        default=None, compare=False, repr=False
    )

    def __len__(self) -> int:
        return len(self.names)

    def index_of(self, name: str) -> int:
        """Row index of a benchmark (exact or unique-suffix match).

        Raises:
            AnalysisError: when nothing or multiple benchmarks match.
        """
        if name in self.names:
            return self.names.index(name)
        matches = [
            i for i, full in enumerate(self.names)
            if full.endswith("/" + name) or f"/{name}/" in full
        ]
        if len(matches) != 1:
            raise AnalysisError(f"benchmark not found in dataset: {name!r}")
        return matches[0]

    # -- normalized views (computed on demand, cheap) -------------------

    def mica_normalized(self) -> np.ndarray:
        """Z-scored MICA matrix."""
        return zscore(self.mica)

    def hpc_normalized(self) -> np.ndarray:
        """Z-scored HPC matrix."""
        return zscore(self.hpc)

    def mica_distances(self) -> np.ndarray:
        """Condensed distances in the z-scored MICA space."""
        return pairwise_distances(self.mica_normalized())

    def hpc_distances(self) -> np.ndarray:
        """Condensed distances in the z-scored HPC space."""
        return pairwise_distances(self.hpc_normalized())

    @property
    def mica_columns(self) -> List[str]:
        return characteristic_names()

    @property
    def hpc_columns(self) -> List[str]:
        return list(HPC_METRIC_NAMES)


def _characterize_one(
    args: "Tuple[str, int, int, dict, str | None, int | None]"
):
    """Worker: build one benchmark's MICA and HPC vectors.

    Runs in a separate process, so it re-resolves the benchmark from
    the registry by name (profiles are deterministic).  When a cache
    directory is given, the trace comes from the profile+seed-keyed
    :mod:`repro.perf` trace cache (warm runs never invoke the
    generator), the 47-dimensional vector goes through the
    content-keyed characterization cache above it, and the 7-metric
    vector through the content+machine-keyed HPC cache beside it (warm
    runs never run a pipeline model) — all shared across workers and
    runs.  When ``shards`` is given, a characterization miss computes
    through the shard-mergeable engine (bit-for-bit identical), so the
    per-shard cache level fills alongside the per-trace one.
    """
    name, trace_length, seed, config_kwargs, cache_dir, shards = args
    # Local imports keep worker startup lean.
    from ..perf import (
        cached_characterize,
        cached_collect_hpc,
        cached_generate_trace,
        faults,
    )
    from ..workloads import get_benchmark

    faults.maybe_fail_worker(name)
    integrity.drain_quarantine_log()  # discard events of earlier jobs
    config = ReproConfig(**config_kwargs)
    benchmark = get_benchmark(name)
    trace = cached_generate_trace(
        benchmark.profile, trace_length, seed=seed, cache_dir=cache_dir
    )
    mica_vector = cached_characterize(
        trace, config, cache_dir, shards=shards
    ).values
    hpc_vector = cached_collect_hpc(trace, cache_dir=cache_dir).values
    entries: Dict[str, str] = {}
    if cache_dir is not None:
        # Name the cache entries this benchmark now rests on (the
        # char/hpc keys need the trace's content hash, known only
        # here), so a journaled build can re-verify them on resume.
        from ..perf.cache import (
            CharacterizationCache,
            HpcCache,
            TraceCache,
            _entry_key,
            _hpc_key,
            _trace_key,
        )
        from ..uarch import EV56_CONFIG, EV67_CONFIG

        entries = {
            "trace": str(TraceCache(cache_dir)._path(
                _trace_key(benchmark.profile, trace_length, seed)
            )),
            "char": str(CharacterizationCache(cache_dir)._path(
                _entry_key(trace, config)
            )),
            "hpc": str(HpcCache(cache_dir)._path(
                _hpc_key(trace, EV56_CONFIG, EV67_CONFIG)
            )),
        }
    return (name, mica_vector, hpc_vector,
            integrity.drain_quarantine_log(), entries)


def _config_kwargs(config: ReproConfig) -> dict:
    return {
        "trace_length": config.trace_length,
        "seed": config.seed,
        "block_bytes": config.block_bytes,
        "page_bytes": config.page_bytes,
        "ilp_window_sizes": tuple(config.ilp_window_sizes),
        "reg_dep_thresholds": tuple(config.reg_dep_thresholds),
        "stride_thresholds": tuple(config.stride_thresholds),
        "ppm_max_order": config.ppm_max_order,
    }


def _cache_key(config: ReproConfig, names: Sequence[str]) -> str:
    # The upstream semantic versions are part of the key, so a
    # generation-protocol, analyzer or simulation bump invalidates
    # dataset matrices mechanically instead of relying on a manual
    # CACHE_VERSION bump.
    from ..perf.cache import CHAR_CACHE_VERSION
    from ..synth import TRACE_GEN_VERSION
    from ..uarch import HPC_SIM_VERSION

    payload = repr((CACHE_VERSION, TRACE_GEN_VERSION, CHAR_CACHE_VERSION,
                    HPC_SIM_VERSION,
                    sorted(_config_kwargs(config).items()), tuple(names)))
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def default_cache_dir() -> Path:
    """Cache directory (override with ``REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".mica_cache"


def clear_dataset_cache(cache_dir: "Path | None" = None) -> int:
    """Delete cached datasets (in-memory and on disk).

    Clears all five cache levels: the dataset-level matrices, the
    per-trace characterization entries, the per-trace HPC vectors, the
    generated-trace entries and the per-shard state entries.

    Returns:
        Number of disk cache files removed.
    """
    from ..perf import (
        CharacterizationCache, HpcCache, ShardCache, TraceCache,
    )
    from ..perf.cache import _unlink_quietly

    _MEMORY_CACHE.clear()
    directory = cache_dir or default_cache_dir()
    removed = 0
    if directory.is_dir():
        # Tolerate concurrent workers clearing the same entries, and
        # sweep dataset-level quarantine + stale writer temp files too
        # (the per-trace levels sweep their own in clear()).
        for pattern in (
            "dataset-*.npz",
            f"dataset-*.npz{integrity.QUARANTINE_SUFFIX}",
            "tmp-dataset-*.npz",
        ):
            for path in directory.glob(pattern):
                removed += _unlink_quietly(path)
        removed += CharacterizationCache(directory).clear()
        removed += HpcCache(directory).clear()
        removed += TraceCache(directory).clear()
        removed += ShardCache(directory).clear()
    return removed


#: Ceiling on the exponential retry backoff (seconds).
_RETRY_BACKOFF_CAP = 2.0


class _JobOutcomes:
    """Mutable accounting shared by the serial and parallel runners.

    When a write-ahead ``journal`` is attached, every lifecycle change
    is appended *before* the build relies on it: attempts as they are
    charged, completions with the benchmark's vectors (exact float64
    bytes, hex) and the cache entries they rest on, failures with their
    final error.  Only the orchestrating process appends — workers stay
    journal-free — so the journal has a single writer.
    """

    def __init__(self, journal=None) -> None:
        self.results: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self.attempts: Dict[str, int] = {}
        self.errors: Dict[str, str] = {}
        self.quarantines: Dict[str, Tuple[QuarantineEvent, ...]] = {}
        self.started: Dict[str, float] = {}
        self.finished: Dict[str, float] = {}
        self.pool_rebuilds = 0
        self.journal = journal

    def _journal_event(self, record: dict) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def record_attempt(self, name: str, attempt: int) -> None:
        self.attempts[name] = attempt
        self._journal_event({
            "event": "attempt-started",
            "benchmark": name,
            "attempt": attempt,
        })

    def record_ok(
        self, name, mica, hpc, events, progress, total, entries=None
    ) -> None:
        self.results[name] = (mica, hpc)
        self.quarantines[name] = tuple(events)
        self.finished[name] = time.perf_counter()
        self._journal_event({
            "event": "completed",
            "benchmark": name,
            "attempts": self.attempts.get(name, 0),
            "mica": np.ascontiguousarray(
                mica, dtype=np.float64
            ).tobytes().hex(),
            "hpc": np.ascontiguousarray(
                hpc, dtype=np.float64
            ).tobytes().hex(),
            "entries": dict(entries or {}),
        })
        if progress:
            print(f"  [{len(self.results):>3}/{total}] {name}")

    def record_failed(self, name: str, message: str) -> None:
        self.errors[name] = message
        self.finished[name] = time.perf_counter()
        self._journal_event({
            "event": "failed",
            "benchmark": name,
            "attempts": self.attempts.get(name, 0),
            "error": message,
        })

    def statuses(self, names: Sequence[str]) -> Tuple[
        BenchmarkBuildStatus, ...
    ]:
        rows = []
        for name in names:
            start = self.started.get(name, 0.0)
            end = self.finished.get(name, start)
            rows.append(BenchmarkBuildStatus(
                name=name,
                ok=name in self.results,
                attempts=self.attempts.get(name, 0),
                seconds=max(0.0, end - start),
                error=self.errors.get(name),
                quarantines=self.quarantines.get(name, ()),
            ))
        return tuple(rows)


def _retry_delay(
    backoff: float,
    round_index: int,
    jitter_seed: "int | None" = None,
    token: str = "",
) -> float:
    """Bounded exponential backoff with deterministic, seedable jitter.

    Without a ``jitter_seed`` this is the historical schedule:
    ``min(backoff * 2**round, _RETRY_BACKOFF_CAP)``.  With one, the
    delay is scaled into ``[delay/2, delay]`` by a factor derived from
    ``sha256(jitter_seed, token, round)`` — deterministic (the same
    seed/token/round always sleeps the same), seedable (tests can pin
    it) and de-synchronizing (builders retrying the same round with
    different seeds or tokens spread out instead of thundering back
    onto the cache in lockstep).  The jittered delay never exceeds the
    :data:`_RETRY_BACKOFF_CAP` ceiling and never drops below half the
    un-jittered delay.
    """
    if backoff <= 0.0:
        return 0.0
    delay = min(backoff * (2 ** round_index), _RETRY_BACKOFF_CAP)
    if jitter_seed is None:
        return delay
    digest = hashlib.sha256(
        f"{jitter_seed}:{token}:{round_index}".encode()
    ).digest()
    unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64  # [0, 1)
    return delay * (0.5 + 0.5 * unit)


def _retry_sleep(
    backoff: float,
    round_index: int,
    jitter_seed: "int | None" = None,
    token: str = "",
    deadline_at: "float | None" = None,
) -> None:
    delay = _retry_delay(backoff, round_index, jitter_seed, token)
    if deadline_at is not None:
        delay = min(delay, max(0.0, deadline_at - time.monotonic()))
    if delay > 0.0:
        time.sleep(delay)


def _deadline_passed(deadline_at: "float | None") -> bool:
    return deadline_at is not None and time.monotonic() >= deadline_at


def _run_jobs_serial(
    jobs: "Dict[str, tuple]",
    order: Sequence[str],
    max_attempts: int,
    retry_backoff: float,
    progress: bool,
    jitter_seed: "int | None" = None,
    deadline_at: "float | None" = None,
    journal=None,
    initial_attempts: "Optional[Dict[str, int]]" = None,
) -> _JobOutcomes:
    outcomes = _JobOutcomes(journal)
    outcomes.attempts.update(initial_attempts or {})
    for name in order:
        outcomes.started[name] = time.perf_counter()
        if _deadline_passed(deadline_at):
            outcomes.attempts.setdefault(name, 0)
            outcomes.record_failed(name, "build deadline exceeded")
            continue
        # Attempts interrupted by an earlier (killed) run stay charged.
        first = outcomes.attempts.get(name, 0) + 1
        for attempt in range(first, max_attempts + 1):
            outcomes.record_attempt(name, attempt)
            try:
                _, mica, hpc, events, entries = _characterize_one(
                    jobs[name]
                )
            except Exception as error:
                if attempt >= max_attempts or _deadline_passed(
                    deadline_at
                ):
                    outcomes.record_failed(
                        name, f"{type(error).__name__}: {error}"
                    )
                    break
                _retry_sleep(
                    retry_backoff, attempt - 1, jitter_seed,
                    token=name, deadline_at=deadline_at,
                )
            else:
                outcomes.record_ok(
                    name, mica, hpc, events, progress, len(order),
                    entries=entries,
                )
                break
        else:
            if first > max_attempts:
                outcomes.record_failed(
                    name,
                    f"interrupted after exhausting {max_attempts} "
                    "attempt(s)",
                )
    return outcomes


def _run_jobs_parallel(
    jobs: "Dict[str, tuple]",
    order: Sequence[str],
    worker_count: int,
    max_attempts: int,
    retry_backoff: float,
    progress: bool,
    jitter_seed: "int | None" = None,
    deadline_at: "float | None" = None,
    journal=None,
    initial_attempts: "Optional[Dict[str, int]]" = None,
) -> _JobOutcomes:
    """Submit jobs with per-future failure handling and crash isolation.

    Normal rounds submit every queued benchmark at once.  When a worker
    process dies, *every* in-flight future fails with
    ``BrokenProcessPool`` — the culprit is indistinguishable from
    collateral — so the casualties move to an *isolation* queue and run
    one at a time against a rebuilt pool: a benchmark that breaks the
    pool while alone in flight is charged the crash; everyone else is
    re-run uncharged.  A benchmark is only declared failed after
    ``max_attempts`` charged attempts, and the failure names it.
    """
    outcomes = _JobOutcomes(journal)
    outcomes.attempts.update(initial_attempts or {})
    pending = deque(order)
    isolation: "deque[str]" = deque()
    retry_round = 0
    pool = ProcessPoolExecutor(max_workers=worker_count)
    try:
        while pending or isolation:
            if _deadline_passed(deadline_at):
                for name in list(pending) + list(isolation):
                    outcomes.started.setdefault(name, time.perf_counter())
                    outcomes.attempts.setdefault(name, 0)
                    outcomes.record_failed(name, "build deadline exceeded")
                break
            if isolation:
                batch = [isolation.popleft()]
            else:
                batch = list(pending)
                pending.clear()
            submitted = {}
            broken = False
            for position, name in enumerate(batch):
                outcomes.started.setdefault(name, time.perf_counter())
                try:
                    future = pool.submit(_characterize_one, jobs[name])
                except Exception:
                    # The pool broke between rounds; nothing here was
                    # actually submitted, so nothing is charged.
                    isolation.extend(batch[position:])
                    broken = True
                    break
                outcomes.record_attempt(
                    name, outcomes.attempts.get(name, 0) + 1
                )
                submitted[future] = name
            for future in as_completed(submitted):
                name = submitted[future]
                try:
                    _, mica, hpc, events, entries = future.result()
                except BrokenProcessPool as error:
                    broken = True
                    if len(submitted) == 1:
                        # Alone in flight: this benchmark's worker died.
                        if outcomes.attempts[name] >= max_attempts:
                            outcomes.record_failed(
                                name,
                                "worker process died while building "
                                f"{name!r}: {error}",
                            )
                        else:
                            isolation.append(name)
                    else:
                        # Collateral of another benchmark's crash:
                        # uncharge the attempt and isolate the batch to
                        # find the culprit.
                        outcomes.attempts[name] -= 1
                        isolation.append(name)
                except Exception as error:
                    if outcomes.attempts[name] >= max_attempts:
                        outcomes.record_failed(
                            name, f"{type(error).__name__}: {error}"
                        )
                    else:
                        pending.append(name)
                else:
                    outcomes.record_ok(
                        name, mica, hpc, events, progress, len(order),
                        entries=entries,
                    )
            if broken:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=worker_count)
                outcomes.pool_rebuilds += 1
            if pending or isolation:
                _retry_sleep(
                    retry_backoff, retry_round, jitter_seed,
                    token="round", deadline_at=deadline_at,
                )
                retry_round += 1
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return outcomes


def load_cached_dataset(
    config: ReproConfig = DEFAULT_CONFIG,
    benchmarks: "Optional[Sequence[Benchmark]]" = None,
    benchmark_names: "Optional[Sequence[str]]" = None,
    cache_dir: "Path | None" = None,
) -> "Optional[WorkloadDataset]":
    """Warm-probe the dataset-level cache without ever building.

    Returns the cached :class:`WorkloadDataset` for this config +
    population (from the in-memory cache or a verified disk entry), or
    ``None`` on any miss.  The service layer uses this to answer warm
    dataset requests with an immediate 200 while cold ones queue.

    Args:
        benchmarks: population as :class:`~repro.workloads.Benchmark`
            objects (default: all 122).
        benchmark_names: population as full names — an alternative to
            ``benchmarks`` for callers that only hold names.
    """
    if benchmark_names is not None:
        if benchmarks is not None:
            raise AnalysisError(
                "pass benchmarks or benchmark_names, not both"
            )
        from ..workloads import get_benchmark

        benchmarks = [get_benchmark(name) for name in benchmark_names]
    population = tuple(
        benchmarks if benchmarks is not None else all_benchmarks()
    )
    names = tuple(benchmark.full_name for benchmark in population)
    suites = tuple(benchmark.suite for benchmark in population)
    key = _cache_key(config, names)
    if key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]
    directory = cache_dir or default_cache_dir()
    arrays = integrity.load_entry(
        directory / f"dataset-{key}.npz",
        level="dataset",
        version=CACHE_VERSION,
        expected={
            "mica": ((len(names), len(characteristic_names())), np.float64),
            "hpc": ((len(names), len(HPC_METRIC_NAMES)), np.float64),
        },
    )
    if arrays is None:
        return None
    dataset = WorkloadDataset(
        names=names,
        suites=suites,
        mica=arrays["mica"],
        hpc=arrays["hpc"],
        config=config,
    )
    _MEMORY_CACHE[key] = dataset
    return dataset


def dataset_journal_path(
    config: ReproConfig = DEFAULT_CONFIG,
    benchmarks: "Optional[Sequence[Benchmark]]" = None,
    cache_dir: "Path | None" = None,
) -> Path:
    """The default build-journal file for this config + population.

    Lives beside the cache entries as
    ``journal-dataset-<key>.jsonl``, keyed exactly like the
    dataset-level cache, so a resume can only ever replay a journal
    written for the same build.
    """
    population = tuple(
        benchmarks if benchmarks is not None else all_benchmarks()
    )
    names = tuple(benchmark.full_name for benchmark in population)
    directory = cache_dir or default_cache_dir()
    return Path(directory) / (
        f"journal-dataset-{_cache_key(config, names)}.jsonl"
    )


def _verify_recorded_entry(level: str, path: str) -> bool:
    """Re-verify one journaled cache entry; quarantines on failure."""
    from ..perf.cache import CharacterizationCache, HpcCache, TraceCache

    classes = {
        "trace": TraceCache, "char": CharacterizationCache,
        "hpc": HpcCache,
    }
    cache_class = classes.get(level)
    if cache_class is None:
        return False
    entry = Path(path)
    probe = cache_class(entry.parent)
    return integrity.load_entry(
        entry,
        level=level,
        version=probe._schema_version(),
        expected=probe._static_expected,
    ) is not None


def _replay_build_journal(
    records: "Sequence[dict]", key: str, use_cache: bool
):
    """Digest a build journal into resumable state.

    Returns ``(preloaded, attempts, failures, quarantines)``:
    vectors of benchmarks whose completion records still verify
    (``name -> (mica, hpc, attempts)``), charged attempt counts of
    interrupted benchmarks, prior terminal failures
    (``name -> record``), and any
    quarantine events raised while re-verifying recorded cache entries.
    A completion whose entries no longer pass integrity is demoted to
    not-built (uncharged — its past attempts succeeded; the damage is
    environmental), so the benchmark is rebuilt from scratch.

    Raises:
        JournalError: the journal's header names a different build.
    """
    from ..errors import JournalError

    header = records[0]
    if header.get("event") != "build-started" or header.get("key") != key:
        raise JournalError(
            "journal does not belong to this build: recorded key "
            f"{header.get('key')!r}, expected {key!r}"
        )
    completions: Dict[str, dict] = {}
    attempts: Dict[str, int] = {}
    failures: Dict[str, dict] = {}
    for record in records[1:]:
        event = record.get("event")
        name = record.get("benchmark")
        if event == "attempt-started":
            attempts[name] = max(
                attempts.get(name, 0), int(record.get("attempt", 0))
            )
        elif event == "completed":
            completions[name] = record
            attempts.pop(name, None)
            failures.pop(name, None)
        elif event == "failed":
            failures[name] = record
            attempts.pop(name, None)
            completions.pop(name, None)
    integrity.drain_quarantine_log()
    preloaded: Dict[str, Tuple[np.ndarray, np.ndarray, int]] = {}
    for name, record in completions.items():
        entries = record.get("entries") or {}
        if use_cache and entries and not all(
            _verify_recorded_entry(level, path)
            for level, path in entries.items()
        ):
            continue
        preloaded[name] = (
            np.frombuffer(
                bytes.fromhex(record["mica"]), dtype=np.float64
            ).copy(),
            np.frombuffer(
                bytes.fromhex(record["hpc"]), dtype=np.float64
            ).copy(),
            int(record.get("attempts", 0)),
        )
    return preloaded, attempts, failures, integrity.drain_quarantine_log()


def build_dataset(
    config: ReproConfig = DEFAULT_CONFIG,
    benchmarks: "Optional[Sequence[Benchmark]]" = None,
    cache_dir: "Path | None" = None,
    use_cache: bool = True,
    jobs: "int | None" = None,
    workers: "int | None" = None,
    progress: bool = False,
    strict: bool = True,
    max_attempts: int = 3,
    retry_backoff: float = 0.1,
    retry_jitter_seed: "int | None" = None,
    deadline: "float | None" = None,
    journal: "Path | str | None" = None,
    shards: "int | None" = None,
) -> WorkloadDataset:
    """Build (or load) the workload data set.

    Args:
        config: trace length, seeds and characterization parameters.
        benchmarks: population to characterize (default: all 122).
        cache_dir: disk cache location (default: repo-local
            ``.mica_cache``; override with ``REPRO_CACHE_DIR``).  Holds
            both the dataset-level matrices and the per-trace
            :mod:`repro.perf` characterization entries.
        use_cache: consult/populate the caches.
        jobs: worker-process count (default: ``os.cpu_count()``, capped
            at the benchmark count; 1 runs serially in-process).
        workers: deprecated alias for ``jobs``.
        progress: print one line per completed benchmark.
        strict: when True (default), raise
            :class:`~repro.errors.DatasetBuildError` — carrying the
            full :class:`DatasetBuildReport` — if any benchmark still
            fails after its retries.  When False, salvage the surviving
            benchmarks: the returned dataset holds only their rows and
            ``dataset.report`` names the casualties.
        max_attempts: charged attempts per benchmark before it is
            declared failed (worker crashes, raises and timeouts all
            count; a worker lost to *another* benchmark's crash does
            not).
        retry_backoff: base of the bounded exponential sleep between
            retry rounds (seconds; 0 disables sleeping).
        retry_jitter_seed: when given, retry sleeps are scaled into
            ``[delay/2, delay]`` by a deterministic factor derived from
            the seed, the retrying benchmark/round and the round index,
            so concurrent builders do not synchronize into
            thundering-herd rebuild rounds.  ``None`` keeps the exact
            historical schedule.
        deadline: wall-clock budget in seconds for the whole build.
            Once it elapses, benchmarks not yet built are recorded as
            failed with ``"build deadline exceeded"`` (cooperatively —
            checked between jobs, attempts and retry rounds) and the
            usual strict/salvage semantics apply.
        journal: when given, a write-ahead journal file recording every
            benchmark's lifecycle (admission, charged attempts,
            completion with exact vectors and cache keys, failure) with
            fsync'd, checksummed appends.  A build killed at *any*
            instant leaves a replayable journal:
            :func:`resume_dataset` skips completed benchmarks, charges
            interrupted attempts against ``max_attempts``, and
            converges to the cold build's exact result.  Starting a
            build truncates any previous journal at this path
            atomically.
        shards: when given, each worker characterizes its trace through
            the shard-mergeable engine split into this many contiguous
            shards (bit-for-bit identical results; the per-shard cache
            level fills alongside the per-trace one, so overlapping or
            extended traces reuse warm shards).  ``None`` keeps the
            one-shot path.

    The result is identical — bit-for-bit — whether built serially with
    cold caches or with ``jobs=N`` against warm caches; workers are pure
    functions of (benchmark name, config).  That equivalence extends to
    the failure paths: corrupted cache entries are quarantined and
    recomputed, crashed workers are retried in a rebuilt pool, and an
    unwritable cache degrades to compute-without-cache — a build that
    completes is bit-for-bit the cold serial result.

    Raises:
        DatasetBuildError: in strict mode when a benchmark exhausts its
            attempts, or (any mode) when *no* benchmark could be built.
    """
    return _build_or_resume(
        config, benchmarks, cache_dir, use_cache, jobs, workers,
        progress, strict, max_attempts, retry_backoff,
        retry_jitter_seed, deadline, journal, resume=False,
        shards=shards,
    )


def resume_dataset(
    config: ReproConfig = DEFAULT_CONFIG,
    benchmarks: "Optional[Sequence[Benchmark]]" = None,
    cache_dir: "Path | None" = None,
    use_cache: bool = True,
    jobs: "int | None" = None,
    workers: "int | None" = None,
    progress: bool = False,
    strict: bool = True,
    max_attempts: int = 3,
    retry_backoff: float = 0.1,
    retry_jitter_seed: "int | None" = None,
    deadline: "float | None" = None,
    journal: "Path | str | None" = None,
    shards: "int | None" = None,
) -> WorkloadDataset:
    """Resume a journaled build after the process died mid-way.

    Replays the write-ahead journal a previous
    ``build_dataset(journal=...)`` left behind (repairing a torn tail
    if the kill landed mid-append), re-verifies the cache entries each
    completed benchmark rests on, and finishes the build: completed
    benchmarks are skipped outright (their journaled vectors are the
    exact float64 bytes the worker produced), interrupted attempts stay
    charged against ``max_attempts``, prior terminal failures are
    carried over, and everything else runs through the normal
    build machinery.  The resumed dataset's matrices and report rows
    are bit-for-bit what an uninterrupted cold serial build produces.

    Args:
        journal: the journal file to replay (default: the
            :func:`dataset_journal_path` for this config +
            population).  An empty or missing journal degrades to a
            fresh journaled build.
        (all other arguments as for :func:`build_dataset`)

    Raises:
        JournalError: the journal belongs to a different build (config,
            population or cache versions changed since it was written).
        DatasetBuildError: as for :func:`build_dataset`.
    """
    return _build_or_resume(
        config, benchmarks, cache_dir, use_cache, jobs, workers,
        progress, strict, max_attempts, retry_backoff,
        retry_jitter_seed, deadline, journal, resume=True,
        shards=shards,
    )


def _build_or_resume(
    config: ReproConfig,
    benchmarks: "Optional[Sequence[Benchmark]]",
    cache_dir: "Path | None",
    use_cache: bool,
    jobs: "int | None",
    workers: "int | None",
    progress: bool,
    strict: bool,
    max_attempts: int,
    retry_backoff: float,
    retry_jitter_seed: "int | None",
    deadline: "float | None",
    journal: "Path | str | None",
    resume: bool,
    shards: "int | None" = None,
) -> WorkloadDataset:
    population = tuple(benchmarks if benchmarks is not None else all_benchmarks())
    names = tuple(benchmark.full_name for benchmark in population)
    suites = tuple(benchmark.suite for benchmark in population)
    key = _cache_key(config, names)

    if use_cache and key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]

    directory = cache_dir or default_cache_dir()
    cache_path = directory / f"dataset-{key}.npz"
    dataset_quarantines: Tuple[QuarantineEvent, ...] = ()
    if use_cache:
        integrity.drain_quarantine_log()
        arrays = integrity.load_entry(
            cache_path,
            level="dataset",
            version=CACHE_VERSION,
            expected={
                "mica": (
                    (len(names), len(characteristic_names())), np.float64
                ),
                "hpc": ((len(names), len(HPC_METRIC_NAMES)), np.float64),
            },
        )
        # A corrupted dataset-level entry is a verified miss: it was
        # quarantined and the matrices are rebuilt below.
        dataset_quarantines = integrity.drain_quarantine_log()
        if arrays is not None:
            dataset = WorkloadDataset(
                names=names,
                suites=suites,
                mica=arrays["mica"],
                hpc=arrays["hpc"],
                config=config,
            )
            _MEMORY_CACHE[key] = dataset
            return dataset

    trace_cache_dir = str(directory) if use_cache else None
    jobs_by_name = {
        name: (name, config.trace_length, 0, _config_kwargs(config),
               trace_cache_dir, shards)
        for name in names
    }
    if jobs is None:
        jobs = workers

    wal = None
    preloaded: Dict[str, Tuple[np.ndarray, np.ndarray, int]] = {}
    prior_attempts: Dict[str, int] = {}
    carried_failures: Dict[str, dict] = {}
    if journal is not None or resume:
        from ..perf.journal import WriteAheadJournal

        journal_path = Path(journal) if journal is not None else (
            directory / f"journal-dataset-{key}.jsonl"
        )
        wal = WriteAheadJournal(journal_path)
        wal.open()
        try:
            if resume and wal.records:
                (preloaded, prior_attempts, raw_failures,
                 resume_quarantines) = _replay_build_journal(
                    wal.records, key, use_cache
                )
                dataset_quarantines = (
                    dataset_quarantines + resume_quarantines
                )
                for name, record in raw_failures.items():
                    if int(record.get("attempts", 0)) >= max_attempts:
                        carried_failures[name] = record
                    else:
                        prior_attempts[name] = int(
                            record.get("attempts", 0)
                        )
            else:
                # A fresh journaled build owns the file: any previous
                # build's records vanish in one atomic rotation, then
                # the header and admissions go down before any work
                # starts.
                wal.rewrite([{
                    "event": "build-started",
                    "key": key,
                    "names": list(names),
                    "use_cache": bool(use_cache),
                }])
                for name in names:
                    wal.append({"event": "admitted", "benchmark": name})
        except BaseException:
            wal.close()
            raise

    try:
        remaining = tuple(
            name for name in names
            if name not in preloaded and name not in carried_failures
        )
        initial_attempts = {
            name: count for name, count in prior_attempts.items()
            if name in jobs_by_name and count > 0
        }
        deadline_at = (
            None if deadline is None else time.monotonic() + deadline
        )
        worker_count = min(
            jobs or os.cpu_count() or 1, max(1, len(remaining))
        )
        if remaining and worker_count > 1:
            outcomes = _run_jobs_parallel(
                jobs_by_name, remaining, worker_count, max_attempts,
                retry_backoff, progress, jitter_seed=retry_jitter_seed,
                deadline_at=deadline_at, journal=wal,
                initial_attempts=initial_attempts,
            )
        elif remaining:
            outcomes = _run_jobs_serial(
                jobs_by_name, remaining, max_attempts, retry_backoff,
                progress, jitter_seed=retry_jitter_seed,
                deadline_at=deadline_at, journal=wal,
                initial_attempts=initial_attempts,
            )
        else:
            outcomes = _JobOutcomes()
        # Fold journal-recovered outcomes back in: completed rows keep
        # their journaled attempt counts, carried failures their final
        # error.  Neither is re-journaled — both are already terminal
        # in the journal.
        for name, (mica, hpc, attempts) in preloaded.items():
            outcomes.results[name] = (mica, hpc)
            outcomes.attempts[name] = attempts
        for name, record in carried_failures.items():
            outcomes.errors[name] = str(record.get("error"))
            outcomes.attempts[name] = int(record.get("attempts", 0))
    finally:
        if wal is not None:
            wal.close()

    report = DatasetBuildReport(
        statuses=outcomes.statuses(names),
        jobs=worker_count,
        pool_rebuilds=outcomes.pool_rebuilds,
        dataset_quarantines=dataset_quarantines,
    )
    failed = report.failed
    if failed and strict:
        raise DatasetBuildError(
            f"dataset build failed for {len(failed)} of {len(names)} "
            "benchmark(s): "
            + ", ".join(status.name for status in failed),
            report=report,
        )
    if len(failed) == len(names):
        raise DatasetBuildError(
            "dataset build failed for every benchmark", report=report
        )

    kept = tuple(name for name in names if name in outcomes.results)
    kept_suites = tuple(
        suite for name, suite in zip(names, suites) if name in
        outcomes.results
    )
    mica = np.vstack([outcomes.results[name][0] for name in kept])
    hpc = np.vstack([outcomes.results[name][1] for name in kept])
    dataset = WorkloadDataset(
        names=kept, suites=kept_suites, mica=mica, hpc=hpc,
        config=config, report=report,
    )
    if use_cache and not failed:
        try:
            integrity.write_entry(
                cache_path,
                level="dataset",
                version=CACHE_VERSION,
                fields={"mica": mica, "hpc": hpc},
                compress=True,
            )
        except OSError as error:
            from ..perf.cache import _degrade

            _degrade(directory, error)
        _MEMORY_CACHE[key] = dataset
    return dataset
