"""Extension: validate simulation points against per-interval HPC data.

The paper's section VII leans on the SimPoint observation: intervals
that execute similar code behave similarly on microarchitecture-
*dependent* metrics, so one simulated interval per phase predicts the
whole run.  This experiment checks both halves of that claim on the
synthetic substrate, per benchmark:

* **homogeneity** — a per-interval HPC metric (simulated EV56 IPC)
  varies less within detected phases than across the run
  (population-weighted within-phase std vs overall std);
* **representativeness** — the phase-size-weighted average of the
  metric at the chosen simulation points approximates the true
  whole-run interval mean (the SimPoint estimate; relative error
  reported).

Phases are detected on a microarchitecture-*independent* signature
(``"bbv"``, ``"mix"`` or the segmented engine's ``"mica"`` vectors), so
the validation never peeks at the metric it predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG, ReproConfig
from ..phases import (
    PhaseResult,
    detect_phases,
    simulation_points,
    split_intervals,
)
from ..reporting import format_table
from ..synth import generate_trace
from ..trace import Trace
from ..uarch import EV56_CONFIG, InOrderModel
from ..workloads import get_benchmark

#: Benchmarks used by default: contrasting mixes, kept small because
#: the metric simulates every interval.
DEFAULT_PHASE_BENCHMARKS = (
    "spec2000/gcc/166",
    "spec2000/mcf/ref",
    "mibench/adpcm/rawcaudio",
)


@dataclass(frozen=True)
class PhaseBenchmarkRow:
    """One benchmark's phase-homogeneity validation."""

    name: str
    intervals: int
    k: int
    within_std: float
    overall_std: float
    true_mean: float
    simpoint_estimate: float

    @property
    def homogeneity(self) -> float:
        """within/overall std ratio (< 1: phases are more uniform)."""
        if self.overall_std == 0.0:
            return 0.0
        return self.within_std / self.overall_std

    @property
    def simpoint_error(self) -> float:
        """Relative error of the SimPoint estimate vs the true mean."""
        if self.true_mean == 0.0:
            return 0.0
        return abs(self.simpoint_estimate - self.true_mean) / abs(
            self.true_mean
        )


@dataclass(frozen=True)
class PhaseHomogeneityResult:
    """Phase-homogeneity validation over a benchmark population.

    Attributes:
        rows: per-benchmark statistics.
        interval: instructions per interval.
        signature: signature substrate phases were detected on.
        metric_name: the per-interval HPC metric used.
    """

    rows: Tuple[PhaseBenchmarkRow, ...]
    interval: int
    signature: str
    metric_name: str

    @property
    def mean_homogeneity(self) -> float:
        """Average within/overall ratio over multi-phase benchmarks."""
        ratios = [row.homogeneity for row in self.rows if row.k > 1]
        return float(np.mean(ratios)) if ratios else 0.0

    @property
    def mean_simpoint_error(self) -> float:
        return float(np.mean([row.simpoint_error for row in self.rows]))

    def format(self) -> str:
        """Human-readable report section."""
        table_rows = [
            [
                row.name,
                row.intervals,
                row.k,
                f"{row.within_std:.4f}",
                f"{row.overall_std:.4f}",
                f"{row.homogeneity:.2f}",
                f"{row.simpoint_error:.1%}",
            ]
            for row in self.rows
        ]
        table = format_table(
            ["benchmark", "#ivals", "k", "within std", "overall std",
             "ratio", "simpoint err"],
            table_rows,
            align_right=[False, True, True, True, True, True, True],
        )
        return (
            "Phase homogeneity (extension; SimPoint premise, "
            "cf. Sherwood et al.)\n"
            f"signature: {self.signature}, metric: {self.metric_name}, "
            f"interval: {self.interval:,} instructions\n"
            f"mean within/overall ratio (k > 1): "
            f"{self.mean_homogeneity:.2f}\n"
            f"mean simulation-point estimate error: "
            f"{self.mean_simpoint_error:.1%}\n\n"
            + table
        )


def _interval_ipc_values(trace: Trace, result: PhaseResult) -> np.ndarray:
    """Simulated EV56 IPC of every interval (the HPC metric)."""
    model = InOrderModel(EV56_CONFIG)
    values = []
    for chunk in split_intervals(trace, result.interval):
        ipc, _ = model.run(chunk)
        values.append(float(ipc))
    return np.array(values)


def _weighted_within_std(
    values: np.ndarray, result: PhaseResult
) -> float:
    """Population-weighted within-phase std (phase_homogeneity's
    formula, over precomputed per-interval values so each interval is
    simulated exactly once)."""
    weighted = 0.0
    for phase in range(result.k):
        member_values = values[result.assignments == phase]
        if len(member_values) == 0:
            continue
        weighted += len(member_values) / len(values) * float(
            member_values.std()
        )
    return weighted


def validate_benchmark(
    name: str,
    trace: Trace,
    result: PhaseResult,
) -> PhaseBenchmarkRow:
    """Homogeneity + simulation-point validation for one trace."""
    values = _interval_ipc_values(trace, result)
    within = _weighted_within_std(values, result)
    overall = float(values.std())
    points = simulation_points(result)
    sizes = result.phase_sizes()
    if points:
        weights = np.array(
            [sizes[int(result.assignments[point])] for point in points],
            dtype=float,
        )
        estimate = float((values[points] * weights).sum() / weights.sum())
    else:
        estimate = 0.0
    return PhaseBenchmarkRow(
        name=name,
        intervals=len(values),
        k=result.k,
        within_std=within,
        overall_std=overall,
        true_mean=float(values.mean()),
        simpoint_estimate=estimate,
    )


def run_phase_homogeneity(
    config: ReproConfig = DEFAULT_CONFIG,
    benchmarks: Sequence[str] = DEFAULT_PHASE_BENCHMARKS,
    interval: int = 5_000,
    signature: str = "bbv",
    seed: int = 0,
) -> PhaseHomogeneityResult:
    """Validate phase detection against per-interval EV56 IPC.

    Args:
        config: supplies the trace length and MICA parameters.
        benchmarks: registry benchmark names to validate.
        interval: instructions per interval.
        signature: phase-detection substrate (``"bbv"``/``"mix"``/
            ``"mica"``).
        seed: k-means seed.
    """
    rows: List[PhaseBenchmarkRow] = []
    for name in benchmarks:
        benchmark = get_benchmark(name)
        trace = generate_trace(benchmark.profile, config.trace_length)
        result = detect_phases(
            trace, interval=interval, seed=seed, signature=signature,
            config=config,
        )
        rows.append(validate_benchmark(benchmark.full_name, trace, result))
    return PhaseHomogeneityResult(
        rows=tuple(rows),
        interval=interval,
        signature=signature,
        metric_name="ipc_ev56",
    )
